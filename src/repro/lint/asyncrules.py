"""Layer 3: asyncio discipline for the socket transport.

* **R-ASYNC** — inside an ``async def`` in the scoped modules
  (``repro.runtime.transport``, ``repro.runtime.parallel``):

  - no thread-blocking calls on the event loop — ``time.sleep``, sync
    socket/file IO, or anything that resolves (through the call
    summaries' blocking fixpoint) to a modexp-heavy
    ``Group.exp``/``powmod`` path or fsync'd checkpoint IO.  Wrapping
    the call in ``loop.run_in_executor`` / ``asyncio.to_thread`` is the
    sanctioned escape hatch and exempts the whole argument subtree;
  - no coroutine called and dropped (a bare ``coro()`` statement never
    runs — the classic missing ``await``);
  - no ``create_task``/``ensure_future`` whose result is discarded (a
    Task nobody holds is garbage-collected mid-flight and its exception
    dies silently; keep the handle or attach a done-callback).

* **R-SHARED** — instance state of a transport class written from more
  than one task-spawning site must funnel through a single writer
  method.  Task roots are the ``self.<method>`` references handed to
  ``create_task`` / ``call_later`` / ``add_signal_handler`` /
  ``start_server`` (plus the implicit main task); an attribute assigned
  in two different methods that belong to two different roots is a
  last-writer-wins race the single-threaded event loop does not
  serialize across awaits.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.parsing import ParsedModule, call_name, chain_names, qualname_index
from repro.lint.registry import (
    ASYNC_SCOPE_PREFIXES,
    EXECUTOR_WRAPPERS,
    TASK_ROOT_REGISTRARS,
    TASK_SPAWNERS,
)
from repro.lint.summaries import SummaryIndex, is_direct_blocking

#: The implicit task every method unreachable from a spawn site runs in.
MAIN_ROOT = "<main>"


def _in_scope(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in ASYNC_SCOPE_PREFIXES
    )


def check_module(parsed: ParsedModule, index: SummaryIndex) -> List[Finding]:
    if not _in_scope(parsed.module):
        return []
    findings: List[Finding] = []
    quals = qualname_index(parsed.tree)

    def symbol_for(node: ast.AST) -> str:
        best = "<module>"
        best_span = None
        lineno = getattr(node, "lineno", 0)
        for candidate, qual in quals.items():
            start = getattr(candidate, "lineno", 0)
            end = getattr(candidate, "end_lineno", start)
            if start <= lineno <= end:
                span = end - start
                if best_span is None or span < best_span:
                    best, best_span = qual, span
        return best

    def emit(rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        findings.append(
            Finding(
                rule=rule,
                path=parsed.rel_path,
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                symbol=symbol_for(node),
                message=message,
                snippet=parsed.snippet(lineno),
                end_line=getattr(node, "end_lineno", lineno),
            )
        )

    _check_async(parsed, index, quals, emit)
    _check_shared(parsed, emit)
    return findings


# -- R-ASYNC -----------------------------------------------------------------


def _check_async(
    parsed: ParsedModule,
    index: SummaryIndex,
    quals: Dict[ast.AST, str],
    emit: Callable[[str, ast.AST, str], None],
) -> None:
    for node in quals:
        if isinstance(node, ast.AsyncFunctionDef):
            _check_async_body(node, index, emit)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_dropped_calls(node, index, emit)


def _check_async_body(
    func: ast.AsyncFunctionDef,
    index: SummaryIndex,
    emit: Callable[[str, ast.AST, str], None],
) -> None:
    """Flag blocking calls reachable on the event loop from ``func``."""
    executor_args = _executor_argument_nodes(func)
    for call in ast.walk(func):
        if not isinstance(call, ast.Call) or call in executor_args:
            continue
        if _inside_nested_function(func, call):
            continue
        name = call_name(call)
        if is_direct_blocking(call):
            emit(
                "R-ASYNC",
                call,
                f"blocking call {name or '<dynamic>'}() on the event loop; "
                "move it behind loop.run_in_executor",
            )
        elif name and index.all_blocking(name):
            emit(
                "R-ASYNC",
                call,
                f"{name}() resolves to a thread-blocking implementation "
                "(sync IO or modexp-heavy path); move it behind "
                "loop.run_in_executor",
            )


def _executor_argument_nodes(func: ast.AST) -> Set[ast.AST]:
    """Every node inside the argument list of an executor wrapper call —
    those run off-loop, so blocking there is the point, not a bug."""
    exempt: Set[ast.AST] = set()
    for call in ast.walk(func):
        if isinstance(call, ast.Call) and call_name(call) in EXECUTOR_WRAPPERS:
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                exempt.update(ast.walk(arg))
    return exempt


def _inside_nested_function(outer: ast.AST, node: ast.AST) -> bool:
    """True when ``node`` sits in a def/lambda nested inside ``outer``
    (its body runs on whatever schedule the nested callable gets, not
    on ``outer``'s await chain)."""
    nested_spans: List[Tuple[int, int]] = []
    for child in ast.walk(outer):
        if child is outer:
            continue
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            start = getattr(child, "lineno", 0)
            end = getattr(child, "end_lineno", start)
            nested_spans.append((start, end))
    lineno = getattr(node, "lineno", 0)
    return any(start <= lineno <= end for start, end in nested_spans)


def _check_dropped_calls(
    func: ast.AST,
    index: SummaryIndex,
    emit: Callable[[str, ast.AST, str], None],
) -> None:
    """Bare expression statements that discard a coroutine or a Task."""
    for stmt in ast.walk(func):
        if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
            continue
        call = stmt.value
        name = call_name(call)
        if name in TASK_SPAWNERS:
            emit(
                "R-ASYNC",
                call,
                f"{name}() result dropped; keep the Task (or attach an "
                "exception-consuming done-callback) so failures surface",
            )
        elif name and index.all_async(name):
            emit(
                "R-ASYNC",
                call,
                f"coroutine {name}() is never awaited; the call builds a "
                "coroutine object and discards it",
            )


# -- R-SHARED ----------------------------------------------------------------


def _check_shared(
    parsed: ParsedModule, emit: Callable[[str, ast.AST, str], None]
) -> None:
    for node in ast.walk(parsed.tree):
        if isinstance(node, ast.ClassDef):
            _check_class_shared(node, emit)


def _method_map(cls: ast.ClassDef) -> Dict[str, ast.AST]:
    return {
        child.name: child
        for child in cls.body
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _self_method_refs(call: ast.Call, methods: Dict[str, ast.AST]) -> Set[str]:
    """Method names referenced as ``self.<m>`` (called or passed) in the
    arguments of a task-root registrar call."""
    refs: Set[str] = set()
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for inner in ast.walk(arg):
            if (
                isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"
                and inner.attr in methods
            ):
                refs.add(inner.attr)
    return refs


def _written_self_attrs(method: ast.AST) -> List[Tuple[str, ast.AST]]:
    """(attribute name, node) for every ``self.x = ...`` /
    ``self.x[...] = ...`` / ``self.x += ...`` in the method body."""
    writes: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(method):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attr = _self_attr_of(target)
            if attr is not None:
                writes.append((attr, node))
    return writes


def _self_attr_of(target: ast.AST) -> Optional[str]:
    if isinstance(target, ast.Subscript):
        target = target.value
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


def _check_class_shared(
    cls: ast.ClassDef, emit: Callable[[str, ast.AST, str], None]
) -> None:
    methods = _method_map(cls)
    if not methods:
        return

    # Task roots: self.<method> references registered as tasks/callbacks.
    roots: Set[str] = set()
    for method in methods.values():
        for call in ast.walk(method):
            if (
                isinstance(call, ast.Call)
                and call_name(call) in TASK_ROOT_REGISTRARS
            ):
                roots.update(_self_method_refs(call, methods))
    if not roots:
        return  # no concurrency inside this class

    # Intra-class call graph: m -> every self.<x>() it invokes.
    edges: Dict[str, Set[str]] = {}
    for name, method in methods.items():
        callees: Set[str] = set()
        for call in ast.walk(method):
            if isinstance(call, ast.Call):
                callee = call_name(call)
                if callee in methods and "self" in chain_names(call.func):
                    callees.add(callee)
        edges[name] = callees

    def reachable(start: str) -> Set[str]:
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for nxt in edges.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    roots_covering: Dict[str, Set[str]] = {name: set() for name in methods}
    for root in roots:
        for method in reachable(root):
            roots_covering[method].add(root)
    for name in methods:
        if not roots_covering[name]:
            roots_covering[name] = {MAIN_ROOT}

    # Attribute -> (writer method, write node); __init__ construction
    # writes are pre-concurrency and do not count.
    writers: Dict[str, List[Tuple[str, ast.AST]]] = {}
    for name, method in methods.items():
        if name == "__init__":
            continue
        for attr, node in _written_self_attrs(method):
            writers.setdefault(attr, []).append((name, node))

    for attr, sites in sorted(writers.items()):
        writer_methods = {name for name, _ in sites}
        if len(writer_methods) < 2:
            continue  # single writer method: the funnel pattern
        covering = set()
        for name in writer_methods:
            covering.update(roots_covering[name])
        if len(covering) < 2:
            continue  # every writer runs in the same task context
        for name, node in sites:
            emit(
                "R-SHARED",
                node,
                f"self.{attr} is written in {sorted(writer_methods)} "
                f"across task roots {sorted(covering)}; funnel the write "
                "through one method",
            )
