"""Layer 2: protocol state-machine conformance (R-PROTO, R-CODEC).

The paper's protocol is a fixed message graph: every arrow in Fig. 1 has
a tag, a sending role, a receiving role, and a phase it belongs to
(gain → keying → comparison → chain → submission).  The tables below are
the *declared* graph — seeded from docs/PROTOCOL.md, the engine parties
(:mod:`repro.core.parties`) and the transport frame catalogue
(:mod:`repro.runtime.transport.frames`).  The extraction pass then
recovers the *implemented* graph from the AST:

* ``send``/``broadcast``/``recv``/``recv_from_all`` call sites in the
  protocol modules (tag = second positional argument), with the phase
  at each send site taken from the lexically latest ``set_phase`` call
  earlier in the same function (no ``set_phase`` in scope means the
  helper inherits its caller's phase and the check abstains);
* frame-kind references in the transport modules — a reference is a
  SEND when it is the first argument of a ``pack_*``/``*send*``/
  ``*broadcast*`` call, and a HANDLER when it appears in a comparison
  (``ftype == frames.MSG``) or as an argument of an ``expect`` call;
* wire-codec byte tags (single-letter ``b"S"`` style literals) split by
  encode-side vs decode-side methods of ``*Codec*`` classes, plus the
  ``registered_types`` table.

**R-PROTO** fires on the diff: a kind sent but never handled, handled
but never sent, sent under a phase the spec forbids, or not declared at
all.  **R-CODEC** fires on codec asymmetry: a byte tag with an encoder
but no decoder (or vice versa), a tag another codec emits that the v2
codec does not cover, and malformed ``registered_types`` entries.
"""

from __future__ import annotations

import ast
import string
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.parsing import ParsedModule, call_name, chain_names, qualname_index
from repro.lint.registry import (
    FRAMES_MODULE_SUFFIX,
    PROTOCOL_MODULE_PREFIXES,
    TRANSPORT_MODULE_PREFIX,
)

# -- declared protocol graph -------------------------------------------------


@dataclass(frozen=True)
class MessageKind:
    """One arrow of the protocol graph: tag, roles, and phase."""

    tag: str
    phase: str
    sender: str
    receiver: str


#: Legal phase order (a send may only occur under its declared phase).
PHASE_ORDER: Tuple[str, ...] = (
    "gain",
    "keying",
    "comparison",
    "chain",
    "submission",
    "aggregate",
)

#: The declared message graph — one entry per arrow in Fig. 1, mirroring
#: ``PHASE_BY_TAG`` in :mod:`repro.core.parties` (the conformance test
#: in tests/test_lint.py asserts the two stay identical).
PROTOCOL_SPEC: Dict[str, MessageKind] = {
    kind.tag: kind
    for kind in [
        MessageKind("dp-request", "gain", "participant", "initiator"),
        MessageKind("dp-response", "gain", "initiator", "participant"),
        MessageKind("pk-share", "keying", "participant", "participant"),
        MessageKind("zkp-commit", "keying", "participant", "participant"),
        MessageKind("zkp-challenge", "keying", "verifier", "prover"),
        MessageKind("zkp-response", "keying", "prover", "verifier"),
        MessageKind("zkp-nizk", "keying", "prover", "verifier"),
        MessageKind("beta-bits", "comparison", "participant", "participant"),
        MessageKind("tau-sets", "chain", "participant", "chain-head"),
        MessageKind("chain", "chain", "chain-node", "chain-successor"),
        MessageKind("final-set", "chain", "chain-tail", "participant"),
        MessageKind("submission", "submission", "participant", "initiator"),
        # Synthetic transcript tag for the sharded hierarchy's champion
        # aggregation; recorded, never carried by send/recv.
        MessageKind("shard-aggregate", "aggregate", "champion", "champion"),
        # The standalone identity-unlinkable sorting protocol (the
        # paper's contribution 3, core/sorting_protocol.py) reuses the
        # framework's phase-2 machinery under its own tags.
        MessageKind("sort-key", "keying", "participant", "participant"),
        MessageKind("sort-sets", "chain", "participant", "chain-head"),
        MessageKind("sort-chain", "chain", "chain-node", "chain-successor"),
        MessageKind("sort-final", "chain", "chain-tail", "participant"),
    ]
}


@dataclass(frozen=True)
class FrameKind:
    """One transport frame type and its declared direction."""

    name: str
    code: int
    direction: str  # "p2c", "c2p", or "both"


#: The declared transport frame catalogue (runtime/transport/frames.py).
FRAME_SPEC: Dict[str, FrameKind] = {
    kind.name: kind
    for kind in [
        FrameKind("HELLO", 1, "p2c"),
        FrameKind("WELCOME", 2, "c2p"),
        FrameKind("SPEC", 3, "c2p"),
        FrameKind("MSG", 4, "both"),
        FrameKind("STATUS", 5, "p2c"),
        FrameKind("PHASE", 6, "p2c"),
        FrameKind("DONE", 7, "p2c"),
        FrameKind("ABORTED", 8, "p2c"),
        FrameKind("DYING", 9, "p2c"),
        FrameKind("READY", 10, "p2c"),
        FrameKind("PEER_REJOINED", 11, "c2p"),
        FrameKind("RESEND", 12, "both"),
        FrameKind("ABORT", 13, "c2p"),
        FrameKind("SHUTDOWN", 14, "c2p"),
        FrameKind("HARVEST", 15, "c2p"),
        FrameKind("BETA", 16, "p2c"),
        FrameKind("PING", 17, "c2p"),
        FrameKind("PONG", 18, "p2c"),
        FrameKind("BYE", 19, "p2c"),
    ]
}

SEND_CALLS = frozenset({"send", "broadcast"})
RECV_CALLS = frozenset({"recv", "recv_from_all"})


# -- shared extraction plumbing ----------------------------------------------


@dataclass
class _Ref:
    """One implemented occurrence of a message kind / frame kind."""

    parsed: ParsedModule
    node: ast.AST
    kind: str  # tag string or frame-kind name
    role: str  # "send" | "recv"
    phase: Optional[str] = None  # sends only; None = unknown/abstain


class _Emitter:
    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self._symbols: Dict[int, Dict[ast.AST, str]] = {}

    def _symbol_for(self, parsed: ParsedModule, node: ast.AST) -> str:
        quals = self._symbols.setdefault(
            id(parsed), qualname_index(parsed.tree)
        )
        best, best_span = "<module>", None
        lineno = getattr(node, "lineno", 0)
        for candidate, qual in quals.items():
            start = getattr(candidate, "lineno", 0)
            end = getattr(candidate, "end_lineno", start)
            if start <= lineno <= end:
                span = end - start
                if best_span is None or span < best_span:
                    best, best_span = qual, span
        return best

    def emit(
        self, rule: str, parsed: ParsedModule, node: ast.AST, message: str
    ) -> None:
        lineno = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                rule=rule,
                path=parsed.rel_path,
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                symbol=self._symbol_for(parsed, node),
                message=message,
                snippet=parsed.snippet(lineno),
                end_line=getattr(node, "end_lineno", lineno),
            )
        )


def _starts_with_any(module: str, prefixes: Sequence[str]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def _module_constants(
    modules: Sequence[ParsedModule],
) -> Dict[str, Dict[str, str]]:
    """``TAG_*``/``PHASE_*`` string constants defined at module level,
    keyed per module — the sorting baseline redefines ``TAG_CHAIN``
    locally, so a merged table would clobber the framework's value."""
    tables: Dict[str, Dict[str, str]] = {}
    for parsed in modules:
        table = tables.setdefault(parsed.module, {})
        for stmt in parsed.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            if not (
                isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name) and (
                    target.id.startswith("TAG_")
                    or target.id.startswith("PHASE_")
                ):
                    table[target.id] = stmt.value.value
    return tables


def _resolve_symbolic(name: str, constants: Dict[str, str]) -> str:
    """Value of a ``TAG_X``/``PHASE_X`` name: the defining module's own
    constant when present (local redefinitions win), else the naming
    convention (``TAG_DP_REQUEST`` -> ``dp-request``) — which covers
    cross-module imports and lets fixture trees skip the constant
    table."""
    if name in constants:
        return constants[name]
    if name.startswith("TAG_"):
        return name[len("TAG_"):].lower().replace("_", "-")
    return name[len("PHASE_"):].lower()


def _literal_arg(node: ast.AST, constants: Dict[str, str]) -> Optional[str]:
    """String value of a tag/phase argument: a literal, or a symbolic
    ``TAG_*``/``PHASE_*`` name (possibly attribute-qualified)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name and (name.startswith("TAG_") or name.startswith("PHASE_")):
        return _resolve_symbolic(name, constants)
    return None


# -- tag graph extraction (protocol modules) ---------------------------------


def _innermost_function(
    quals: Dict[ast.AST, str], lineno: int
) -> Optional[ast.AST]:
    best, best_span = None, None
    for candidate in quals:
        if not isinstance(candidate, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        start = candidate.lineno
        end = getattr(candidate, "end_lineno", start)
        if start <= lineno <= end:
            span = end - start
            if best_span is None or span < best_span:
                best, best_span = candidate, span
    return best


def _extract_tag_refs(
    modules: Sequence[ParsedModule],
    tables: Dict[str, Dict[str, str]],
) -> List[_Ref]:
    refs: List[_Ref] = []
    for parsed in modules:
        if not _starts_with_any(parsed.module, PROTOCOL_MODULE_PREFIXES):
            continue
        constants = tables.get(parsed.module, {})
        quals = qualname_index(parsed.tree)
        # set_phase sites keyed by their innermost enclosing function.
        phase_sites: Dict[Optional[int], List[Tuple[int, str]]] = {}
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) == "set_phase" and node.args:
                phase = _literal_arg(node.args[0], constants)
                if phase is not None:
                    owner = _innermost_function(quals, node.lineno)
                    phase_sites.setdefault(
                        id(owner) if owner else None, []
                    ).append((node.lineno, phase))
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name not in SEND_CALLS and name not in RECV_CALLS:
                continue
            if len(node.args) < 2:
                continue
            tag = _literal_arg(node.args[1], constants)
            if tag is None:
                continue
            role = "send" if name in SEND_CALLS else "recv"
            phase: Optional[str] = None
            if role == "send":
                owner = _innermost_function(quals, node.lineno)
                sites = phase_sites.get(id(owner) if owner else None, [])
                preceding = [p for line, p in sites if line <= node.lineno]
                if preceding:
                    phase = preceding[-1]
            refs.append(_Ref(parsed, node, tag, role, phase))
    return refs


def _check_tags(refs: List[_Ref], emitter: _Emitter) -> None:
    sent = {ref.kind for ref in refs if ref.role == "send"}
    received = {ref.kind for ref in refs if ref.role == "recv"}
    for ref in refs:
        kind = PROTOCOL_SPEC.get(ref.kind)
        if kind is None:
            emitter.emit(
                "R-PROTO",
                ref.parsed,
                ref.node,
                f"message tag '{ref.kind}' is not declared in the protocol"
                " spec (lint/protocol.py PROTOCOL_SPEC)",
            )
            continue
        if ref.role == "send":
            if ref.kind not in received:
                emitter.emit(
                    "R-PROTO",
                    ref.parsed,
                    ref.node,
                    f"message tag '{ref.kind}' is sent here but no recv"
                    " path handles it",
                )
            if ref.phase is not None and ref.phase != kind.phase:
                emitter.emit(
                    "R-PROTO",
                    ref.parsed,
                    ref.node,
                    f"message tag '{ref.kind}' sent under phase"
                    f" '{ref.phase}'; the spec binds it to phase"
                    f" '{kind.phase}'",
                )
        elif ref.kind not in sent:
            emitter.emit(
                "R-PROTO",
                ref.parsed,
                ref.node,
                f"message tag '{ref.kind}' is handled here but nothing"
                " ever sends it",
            )


# -- frame graph extraction (transport modules) ------------------------------


def _frame_constant_defs(
    modules: Sequence[ParsedModule],
) -> Dict[str, int]:
    """UPPER = <int literal> module-level assigns in ``*.frames``."""
    kinds: Dict[str, int] = {}
    for parsed in modules:
        if not parsed.module.endswith(FRAMES_MODULE_SUFFIX):
            continue
        for stmt in parsed.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            if not (
                isinstance(stmt.value, ast.Constant)
                and type(stmt.value.value) is int
            ):
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id.isupper():
                    kinds[target.id] = stmt.value.value
    return kinds


def _frame_ref_name(
    node: ast.AST, parsed: ParsedModule, known: Set[str]
) -> Optional[str]:
    """Frame-kind name referenced by ``node``: ``frames.MSG``-style
    attributes anywhere in transport code; bare upper-case names only
    inside the ``*.frames`` module itself."""
    if isinstance(node, ast.Attribute) and node.attr in known:
        if "frames" in chain_names(node.value) or isinstance(
            node.value, ast.Name
        ):
            return node.attr
    if (
        isinstance(node, ast.Name)
        and node.id in known
        and parsed.module.endswith(FRAMES_MODULE_SUFFIX)
    ):
        return node.id
    return None


def _is_frame_send_call(name: str) -> bool:
    return name.startswith("pack_") or "send" in name or "broadcast" in name


def _extract_frame_refs(
    modules: Sequence[ParsedModule], known: Set[str]
) -> List[_Ref]:
    refs: List[_Ref] = []
    for parsed in modules:
        if not _starts_with_any(parsed.module, (TRANSPORT_MODULE_PREFIX,)):
            continue
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if _is_frame_send_call(name) and node.args:
                    kind = _frame_ref_name(node.args[0], parsed, known)
                    if kind is not None:
                        refs.append(_Ref(parsed, node, kind, "send"))
                elif name == "expect":
                    for arg in node.args:
                        kind = _frame_ref_name(arg, parsed, known)
                        if kind is not None:
                            refs.append(_Ref(parsed, node, kind, "recv"))
            elif isinstance(node, ast.Compare):
                for side in [node.left] + list(node.comparators):
                    kind = _frame_ref_name(side, parsed, known)
                    if kind is not None:
                        refs.append(_Ref(parsed, node, kind, "recv"))
    return refs


def _check_frames(refs: List[_Ref], emitter: _Emitter) -> None:
    sent = {ref.kind for ref in refs if ref.role == "send"}
    handled = {ref.kind for ref in refs if ref.role == "recv"}
    for ref in refs:
        if ref.kind not in FRAME_SPEC:
            emitter.emit(
                "R-PROTO",
                ref.parsed,
                ref.node,
                f"frame kind {ref.kind} is not declared in the transport"
                " spec (lint/protocol.py FRAME_SPEC)",
            )
            continue
        if ref.role == "send" and ref.kind not in handled:
            emitter.emit(
                "R-PROTO",
                ref.parsed,
                ref.node,
                f"frame kind {ref.kind} is sent here but no dispatch"
                " branch or expect() ever handles it",
            )
        elif ref.role == "recv" and ref.kind not in sent:
            emitter.emit(
                "R-PROTO",
                ref.parsed,
                ref.node,
                f"frame kind {ref.kind} is handled here but nothing ever"
                " sends it",
            )


# -- wire-codec conformance (R-CODEC) ----------------------------------------


def _byte_tags(method: ast.AST) -> Dict[str, int]:
    """Single-ASCII-letter bytes literals in a method -> first line."""
    tags: Dict[str, int] = {}
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, bytes)
            and len(node.value) == 1
            and chr(node.value[0]) in string.ascii_letters
        ):
            tags.setdefault(chr(node.value[0]), node.lineno)
    return tags


def _check_codecs(
    modules: Sequence[ParsedModule], emitter: _Emitter
) -> None:
    codec_classes: List[Tuple[ParsedModule, ast.ClassDef]] = []
    for parsed in modules:
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.ClassDef) and "Codec" in node.name:
                codec_classes.append((parsed, node))

    encode_sides: Dict[str, Set[str]] = {}
    per_class: List[Tuple[ParsedModule, ast.ClassDef, Dict[str, int], Dict[str, int]]] = []
    for parsed, cls in codec_classes:
        encode_tags: Dict[str, int] = {}
        decode_tags: Dict[str, int] = {}
        has_decoder = False
        for child in cls.body:
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if child.name.lstrip("_").startswith("encode"):
                for tag, line in _byte_tags(child).items():
                    encode_tags.setdefault(tag, line)
            elif child.name.lstrip("_").startswith("decode"):
                has_decoder = True
                for tag, line in _byte_tags(child).items():
                    decode_tags.setdefault(tag, line)
        if not has_decoder:
            continue  # not a full codec (encoder-only helper class)
        encode_sides[cls.name] = set(encode_tags)
        per_class.append((parsed, cls, encode_tags, decode_tags))

    for parsed, cls, encode_tags, decode_tags in per_class:
        for tag in sorted(set(encode_tags) - set(decode_tags)):
            node = _line_anchor(cls, encode_tags[tag])
            emitter.emit(
                "R-CODEC",
                parsed,
                node,
                f"{cls.name} encodes wire tag '{tag}' but its decode"
                " path never accepts it (silent interop break)",
            )
        for tag in sorted(set(decode_tags) - set(encode_tags)):
            node = _line_anchor(cls, decode_tags[tag])
            emitter.emit(
                "R-CODEC",
                parsed,
                node,
                f"{cls.name} decodes wire tag '{tag}' that its encoder"
                " never produces (dead or drifted format)",
            )

    # Cross-codec coverage: everything any codec emits must be covered
    # by the v2 codec (the transport's on-the-wire format).
    v2 = [entry for entry in per_class if "V2" in entry[1].name]
    if v2:
        v2_tags: Set[str] = set()
        for _, cls, encode_tags, _ in v2:
            v2_tags.update(encode_tags)
        for parsed, cls, encode_tags, _ in per_class:
            if "V2" in cls.name:
                continue
            for tag in sorted(set(encode_tags) - v2_tags):
                node = _line_anchor(cls, encode_tags[tag])
                emitter.emit(
                    "R-CODEC",
                    parsed,
                    node,
                    f"wire tag '{tag}' encoded by {cls.name} is not"
                    " covered by the v2 codec",
                )

    _check_registered_types(modules, emitter)


@dataclass
class _Anchor:
    lineno: int
    col_offset: int = 0
    end_lineno: Optional[int] = None


def _line_anchor(cls: ast.ClassDef, lineno: int) -> ast.AST:
    anchor = _Anchor(lineno=lineno)
    anchor.end_lineno = lineno
    return anchor  # type: ignore[return-value]


def _check_registered_types(
    modules: Sequence[ParsedModule], emitter: _Emitter
) -> None:
    """The tag-O registry: every entry must name a distinct class and a
    non-empty field tuple (id = position, append-only)."""
    for parsed in modules:
        for node in ast.walk(parsed.tree):
            if (
                not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                or node.name != "registered_types"
            ):
                continue
            seen: Dict[str, int] = {}
            for tup in ast.walk(node):
                if not isinstance(tup, ast.Tuple) or len(tup.elts) != 2:
                    continue
                cls_ref, fields = tup.elts
                cls_name = None
                if isinstance(cls_ref, ast.Name):
                    cls_name = cls_ref.id
                elif isinstance(cls_ref, ast.Attribute):
                    cls_name = cls_ref.attr
                if cls_name is None or not isinstance(fields, ast.Tuple):
                    continue
                if cls_name in seen:
                    emitter.emit(
                        "R-CODEC",
                        parsed,
                        tup,
                        f"registered_types lists {cls_name} twice (ids are"
                        f" positional; first at line {seen[cls_name]})",
                    )
                seen.setdefault(cls_name, tup.lineno)
                if not fields.elts:
                    emitter.emit(
                        "R-CODEC",
                        parsed,
                        tup,
                        f"registered_types entry for {cls_name} has no"
                        " fields; a decoded object would be rebuilt from"
                        " nothing",
                    )


# -- entry point -------------------------------------------------------------


def check_modules(modules: Sequence[ParsedModule]) -> List[Finding]:
    """Cross-module spec-vs-implementation diff over a parsed tree."""
    emitter = _Emitter()
    tables = _module_constants(modules)
    _check_tags(_extract_tag_refs(modules, tables), emitter)
    known = set(FRAME_SPEC) | set(_frame_constant_defs(modules))
    _check_frames(_extract_frame_refs(modules, known), emitter)
    _check_codecs(modules, emitter)
    return emitter.findings
