"""Orchestration: walk files, run both layers, apply suppressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint import asyncrules, invariants, protocol, taint
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.findings import Finding
from repro.lint.parsing import ParsedModule, parse_module
from repro.lint.registry import TaintRegistry, default_registry
from repro.lint.summaries import build_summaries

_SKIP_DIRS = {"__pycache__", ".git", "repro.egg-info"}


@dataclass
class LintReport:
    """Everything one run produced, pre-split by suppression state."""

    fresh: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def all_findings(self) -> List[Finding]:
        return self.fresh + self.baselined + self.suppressed

    def exit_code(self, strict: bool = False) -> int:
        if self.parse_errors:
            return 2
        if self.fresh:
            return 1
        if strict and self.stale:
            return 1
        return 0


def collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.append(candidate)
    return files


def lint_paths(
    paths: Sequence[Path],
    *,
    root: Optional[Path] = None,
    registry: Optional[TaintRegistry] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Run both layers over ``paths``; module names resolve against ``root``."""
    registry = registry or default_registry()
    root = (root or Path.cwd()).resolve()
    report = LintReport()
    modules: List[ParsedModule] = []
    for file_path in collect_files([Path(p) for p in paths]):
        try:
            modules.append(parse_module(file_path, root))
        except (SyntaxError, ValueError) as error:
            report.parse_errors.append(f"{file_path}: {error}")
    report.files_scanned = len(modules)
    if report.parse_errors:
        return report

    index = build_summaries(modules)
    raw: List[Finding] = []
    for parsed in modules:
        raw.extend(taint.check_module(parsed, index, registry))
        raw.extend(invariants.check_module(parsed, index))
        raw.extend(asyncrules.check_module(parsed, index))
    raw.extend(protocol.check_modules(modules))
    findings = _dedupe(raw)

    by_path = {parsed.rel_path: parsed for parsed in modules}
    kept: List[Finding] = []
    for finding in findings:
        parsed = by_path.get(finding.path)
        if parsed is not None and parsed.is_ignored(
            finding.rule, finding.line, finding.end_line
        ):
            report.suppressed.append(finding)
        else:
            kept.append(finding)

    if baseline is not None:
        report.fresh, report.baselined, report.stale = baseline.split(kept)
    else:
        report.fresh = kept
    return report


def _dedupe(findings: Iterable[Finding]) -> List[Finding]:
    seen = set()
    unique: List[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.line, finding.col, finding.message)
        if key not in seen:
            seen.add(key)
            unique.append(finding)
    unique.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return unique
