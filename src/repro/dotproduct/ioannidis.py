"""The Ioannidis-Grama-Atallah secure two-party dot product protocol.

Bob holds a ``(d-1)``-dimensional vector **w**, Alice a ``(d-1)``-dimensional
vector **v** plus a private scalar ``α``; Bob learns ``w·v + α`` and
nothing else, Alice learns nothing.  (In the original protocol the
parties finish by exchanging ``α`` and ``β``; the ranking framework
deliberately *skips* that exchange — the initiator's ``α = ρ_j`` is the
mask that keeps the partial gain hidden from the participant.)

Mechanics (one round trip):

1. Bob embeds ``[w, 1]`` as row ``r`` of a random ``s×d`` matrix ``X``,
   picks a random ``s×s`` matrix ``Q``, and sends ``QX`` together with
   blinded helper vectors ``c' = c + R1·R2·f`` and ``g = R1·R3·f``.
2. Alice forms ``v' = [v, α]``, computes ``y = (QX)v'``, ``z = Σ y_i``,
   and answers with ``a = z − c'·v'`` and ``h = g·v'``.
3. Bob recovers ``β = (a + h·R2/R3)/b`` where ``b`` is the ``r``-th
   column sum of ``Q``.

**Substitution (documented in DESIGN.md §5):** the original paper works
over the reals; we run the identical algebra over a prime field ``Z_p``
with ``p`` far larger than any true dot product, so division is exact
(modular inverse) and results are recovered exactly as centered
residues.  Security still rests on the linear system being
underdetermined.

Hiding argument: ``QX`` has ``s·d`` entries but Alice faces ``s·s + s·d``
unknowns (``Q`` and ``X``); ``c'`` and ``g`` add ``2d`` equations against
``d + 3`` fresh unknowns (``f``, ``R1``, ``R2``, ``R3``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.math.modular import mod_inverse
from repro.math.rng import RNG

Vector = List[int]
Matrix = List[List[int]]


@dataclass(frozen=True)
class BobRequest:
    """First message, Bob → Alice: ``(QX, c', g)``."""

    qx: Matrix
    c_blinded: Vector
    g_blinded: Vector

    @property
    def dimension(self) -> int:
        return len(self.c_blinded)

    def size_field_elements(self) -> int:
        return len(self.qx) * len(self.qx[0]) + 2 * self.dimension


@dataclass(frozen=True)
class AliceResponse:
    """Second message, Alice → Bob: ``(a, h)``."""

    a: int
    h: int

    def size_field_elements(self) -> int:
        return 2


@dataclass(frozen=True)
class BobState:
    """Bob's retained secrets between the two messages."""

    b: int = field(repr=False)  # repro: secret
    r2: int = field(repr=False)  # repro: secret
    r3: int = field(repr=False)  # repro: secret


class DotProductProtocol:
    """The protocol over the prime field ``Z_p``.

    Parameters
    ----------
    field_prime:
        Modulus; must exceed twice the magnitude of any true dot product
        so centered residues decode exactly.
    expansion:
        How many rows ``s`` exceeds the vector dimension ``d`` (the paper
        notes ``s`` need not be large; it must satisfy ``s ≥ 2`` so that
        the real row hides among random ones).
    """

    def __init__(self, field_prime: int, expansion: int = 2):
        if field_prime < 5:
            raise ValueError("field prime too small")
        if expansion < 1:
            raise ValueError("expansion must be at least 1")
        self.p = field_prime
        self.expansion = expansion

    # -- Bob (vector holder) ---------------------------------------------------
    def bob_request(self, w: Sequence[int], rng: RNG) -> Tuple[BobRequest, BobState]:
        """Build Bob's message for vector ``w`` (without the appended 1)."""
        p = self.p
        d = len(w) + 1
        s = d + self.expansion
        row = [value % p for value in w] + [1]
        while True:
            q = [[rng.randrange(p) for _ in range(s)] for _ in range(s)]
            r_index = rng.randrange(s)
            b = sum(q[i][r_index] for i in range(s)) % p
            if b != 0:
                break
        x = [
            row if i == r_index else [rng.randrange(p) for _ in range(d)]
            for i in range(s)
        ]
        qx = _mat_mul(q, x, p)
        column_sums = [sum(q[j][i] for j in range(s)) % p for i in range(s)]
        c = [0] * d
        for i in range(s):
            if i == r_index:
                continue
            for k in range(d):
                c[k] = (c[k] + x[i][k] * column_sums[i]) % p
        f = [rng.randrange(p) for _ in range(d)]
        r1 = rng.rand_nonzero(p)
        r2 = rng.rand_nonzero(p)
        r3 = rng.rand_nonzero(p)
        c_blinded = [(c[k] + r1 * r2 % p * f[k]) % p for k in range(d)]
        g_blinded = [r1 * r3 % p * f[k] % p for k in range(d)]
        return (
            BobRequest(qx=qx, c_blinded=c_blinded, g_blinded=g_blinded),
            BobState(b=b, r2=r2, r3=r3),
        )

    # -- message validation -------------------------------------------------------
    def validate_request(self, request: BobRequest) -> bool:
        """Shape and field-range check on Bob's message.

        Every entry must already be a reduced residue in ``[0, p)``; a
        negative or oversized entry marks a corrupted message, which
        would otherwise silently skew the recovered dot product.
        """
        if not isinstance(request, BobRequest):
            return False
        d = request.dimension
        if d < 2 or len(request.g_blinded) != d:
            return False
        if not request.qx or any(len(row) != d for row in request.qx):
            return False
        entries = [x for row in request.qx for x in row]
        entries += list(request.c_blinded) + list(request.g_blinded)
        return all(isinstance(x, int) and 0 <= x < self.p for x in entries)

    def validate_response(self, response: AliceResponse) -> bool:
        """Field-range check on Alice's reply."""
        return (
            isinstance(response, AliceResponse)
            and isinstance(response.a, int)
            and isinstance(response.h, int)
            and 0 <= response.a < self.p
            and 0 <= response.h < self.p
        )

    # -- Alice (the other vector holder) ------------------------------------------
    def alice_respond(
        self, request: BobRequest, v: Sequence[int], alpha: int
    ) -> AliceResponse:
        """Alice's reply for vector ``v`` and private scalar ``alpha``."""
        p = self.p
        d = request.dimension
        if len(v) + 1 != d:
            raise ValueError(
                f"dimension mismatch: Bob sent d={d}, Alice holds {len(v)}+1"
            )
        v_prime = [value % p for value in v] + [alpha % p]
        y = [_dot(row, v_prime, p) for row in request.qx]
        z = sum(y) % p
        a = (z - _dot(request.c_blinded, v_prime, p)) % p
        h = _dot(request.g_blinded, v_prime, p)
        return AliceResponse(a=a, h=h)

    # -- Bob finishes -----------------------------------------------------------------
    def bob_recover(self, state: BobState, response: AliceResponse) -> int:
        """``β = (a + h·R2/R3)/b mod p``, as a centered residue.

        Returns the signed integer ``w·v + α`` provided its magnitude is
        below ``p/2``.
        """
        p = self.p
        ratio = state.r2 * mod_inverse(state.r3, p) % p
        beta = (response.a + response.h * ratio) % p
        beta = beta * mod_inverse(state.b, p) % p
        return _centered(beta, p)

    # -- convenience -------------------------------------------------------------------
    def run_locally(
        self, w: Sequence[int], v: Sequence[int], alpha: int, rng: RNG
    ) -> int:
        """Run both roles in-process (tests, examples)."""
        request, state = self.bob_request(w, rng)
        response = self.alice_respond(request, v, alpha)
        return self.bob_recover(state, response)

    def message_bits(self, dimension: int) -> Tuple[int, int]:
        """(Bob→Alice, Alice→Bob) wire sizes in bits for ``d``-dim vectors."""
        d = dimension + 1
        s = d + self.expansion
        field_bits = self.p.bit_length()
        return ((s * d + 2 * d) * field_bits, 2 * field_bits)


def _mat_mul(a: Matrix, b: Matrix, p: int) -> Matrix:
    rows, inner, cols = len(a), len(b), len(b[0])
    result = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        a_row = a[i]
        out_row = result[i]
        for k in range(inner):
            a_ik = a_row[k]
            if a_ik == 0:
                continue
            b_row = b[k]
            for j in range(cols):
                out_row[j] = (out_row[j] + a_ik * b_row[j]) % p
    return result


def _dot(a: Sequence[int], b: Sequence[int], p: int) -> int:
    if len(a) != len(b):
        raise ValueError("dot product of different-length vectors")
    return sum(x * y for x, y in zip(a, b)) % p


def _centered(value: int, p: int) -> int:
    """Map a residue in ``[0, p)`` to the centered range ``(-p/2, p/2]``."""
    return value - p if value > p // 2 else value
