"""Secure two-party dot product (paper Section IV-A).

Implementation of the Ioannidis-Grama-Atallah protocol used by the gain
computation phase.  See :mod:`repro.dotproduct.ioannidis`.
"""

from repro.dotproduct.ioannidis import (
    AliceResponse,
    BobRequest,
    BobState,
    DotProductProtocol,
)

__all__ = ["AliceResponse", "BobRequest", "BobState", "DotProductProtocol"]
