"""Structured mapping from the paper's claims to this repository.

Machine-checkable provenance: every protocol step, lemma, and evaluation
figure of the paper points at the code that implements, tests, or
regenerates it.  ``tests/test_paper_map.py`` asserts all referenced
modules and files exist, so the map cannot rot silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class PaperItem:
    """One element of the paper and where it lives here."""

    paper_ref: str            # e.g. "Fig. 1 step 7", "Lemma 3", "Fig. 2(a)"
    summary: str
    modules: Tuple[str, ...]  # importable module paths
    tests: Tuple[str, ...] = ()     # test files (repo-relative)
    bench: str = ""                 # bench file, if any


PROTOCOL_STEPS: List[PaperItem] = [
    PaperItem(
        "Fig. 1 setup", "group generation, questionnaire, parameter k",
        ("repro.groups.params", "repro.core.gain", "repro.core.parties"),
        ("tests/test_groups_params.py", "tests/test_core_gain.py"),
    ),
    PaperItem(
        "Fig. 1 steps 1-4", "secure gain computation: masked dot product "
        "β = ρ·p + ρ_j via Ioannidis et al.",
        ("repro.dotproduct.ioannidis", "repro.core.gain", "repro.core.parties"),
        ("tests/test_dotproduct.py", "tests/test_core_gain.py"),
    ),
    PaperItem(
        "Fig. 1 step 5", "distributed ElGamal keying with multi-verifier "
        "Schnorr proofs of key knowledge",
        ("repro.crypto.distkey", "repro.crypto.zkp"),
        ("tests/test_crypto_distkey.py", "tests/test_crypto_zkp.py",
         "tests/test_adversarial.py"),
    ),
    PaperItem(
        "Fig. 1 step 6", "bit-wise exponential-ElGamal publication of β",
        ("repro.crypto.bitenc", "repro.crypto.elgamal"),
        ("tests/test_crypto_bitenc.py", "tests/test_crypto_elgamal.py"),
    ),
    PaperItem(
        "Fig. 1 step 7", "homomorphic γ/ω/τ comparison circuit",
        ("repro.core.comparison",),
        ("tests/test_core_comparison.py", "tests/test_properties.py"),
    ),
    PaperItem(
        "Fig. 1 step 8", "decrypt-rerandomize-shuffle chain (identity "
        "unlinkability)",
        ("repro.core.shuffle", "repro.crypto.distkey"),
        ("tests/test_core_shuffle.py", "tests/test_security_games.py"),
    ),
    PaperItem(
        "Fig. 1 step 9", "zero counting, rank = zeros + 1, top-k submission "
        "with initiator re-verification",
        ("repro.core.parties", "repro.core.framework"),
        ("tests/test_core_framework.py", "tests/test_adversarial.py"),
    ),
]

SECURITY_CLAIMS: List[PaperItem] = [
    PaperItem(
        "Lemma 1", "private input hiding (dot-product + masking)",
        ("repro.dotproduct.ioannidis", "repro.analysis.leakage"),
        ("tests/test_dotproduct.py", "tests/test_analysis_leakage.py"),
        bench="benchmarks/test_ablations.py",
    ),
    PaperItem(
        "Lemma 2", "bit-wise ElGamal stays IND-CPA",
        ("repro.crypto.bitenc", "repro.analysis.games"),
        ("tests/test_analysis.py",),
    ),
    PaperItem(
        "Lemma 3", "gain hiding (Definition 5 game)",
        ("repro.analysis.games",),
        ("tests/test_security_games.py",),
        bench="benchmarks/test_ablations.py",
    ),
    PaperItem(
        "Lemma 4", "identity unlinkability (Definition 7 game)",
        ("repro.analysis.games", "repro.core.shuffle"),
        ("tests/test_security_games.py",),
        bench="benchmarks/test_ablations.py",
    ),
]

EVALUATION: List[PaperItem] = [
    PaperItem(
        "Fig. 2(a)", "participant time vs n: SS cubic, ours quadratic",
        ("repro.analysis.costmodel", "repro.analysis.counting"),
        ("benchmarks/test_validation.py",),
        bench="benchmarks/test_fig2a_participants.py",
    ),
    PaperItem(
        "Fig. 2(b)", "participant time vs m: logarithmic",
        ("repro.analysis.costmodel",),
        bench="benchmarks/test_fig2bcd_parameters.py",
    ),
    PaperItem(
        "Fig. 2(c)", "participant time vs d1: linear",
        ("repro.analysis.costmodel",),
        bench="benchmarks/test_fig2bcd_parameters.py",
    ),
    PaperItem(
        "Fig. 2(d)", "participant time vs h: linear",
        ("repro.analysis.costmodel",),
        bench="benchmarks/test_fig2bcd_parameters.py",
    ),
    PaperItem(
        "Fig. 3(a)", "ECC vs DL across security levels, n=70",
        ("repro.groups.curves", "repro.groups.dl", "repro.analysis.costmodel"),
        bench="benchmarks/test_fig3a_security_levels.py",
    ),
    PaperItem(
        "Fig. 3(b)", "networked execution over 80-node random graph",
        ("repro.netsim.topology", "repro.netsim.simulator",
         "repro.netsim.transport"),
        ("tests/test_netsim.py",),
        bench="benchmarks/test_fig3b_network.py",
    ),
    PaperItem(
        "Section VI-B", "complexity comparison table",
        ("repro.analysis.complexity",),
        ("tests/test_analysis.py",),
        bench="benchmarks/test_tab_complexity.py",
    ),
]

BASELINES_AND_SUBSTRATES: List[PaperItem] = [
    PaperItem(
        "ref [3] Jónsson et al.", "SS sorting-network baseline",
        ("repro.sorting.ss_sort", "repro.sorting.networks",
         "repro.sharing.arithmetic", "repro.sharing.protocol",
         "repro.baselines.ss_framework"),
        ("tests/test_sorting.py", "tests/test_sharing_protocol.py",
         "tests/test_baselines.py"),
    ),
    PaperItem(
        "ref [4] Burkhart-Dimitropoulos", "probabilistic top-k baseline",
        ("repro.sorting.topk",),
        ("tests/test_sorting.py",),
    ),
    PaperItem(
        "ref [5] Nishide-Ohta", "SS comparison (LSB gadget + cost model)",
        ("repro.sharing.comparison",),
        ("tests/test_sharing_comparison.py",),
    ),
    PaperItem(
        "ref [8] DGK", "two-party HE comparison",
        ("repro.twoparty.dgk",),
        ("tests/test_twoparty.py",),
        bench="benchmarks/test_extensions.py",
    ),
    PaperItem(
        "ref [10] Paillier", "alternative additive HE — and why not",
        ("repro.crypto.paillier",),
        ("tests/test_crypto_paillier.py",),
    ),
    PaperItem(
        "refs [13, 18] anonymous messaging", "decryption mix-net substrate",
        ("repro.anonmsg.mixnet", "repro.anonmsg.collection"),
        ("tests/test_anonmsg.py",),
        bench="benchmarks/test_extensions.py",
    ),
]

ALL_ITEMS: Dict[str, List[PaperItem]] = {
    "protocol": PROTOCOL_STEPS,
    "security": SECURITY_CLAIMS,
    "evaluation": EVALUATION,
    "baselines": BASELINES_AND_SUBSTRATES,
}


def all_items() -> List[PaperItem]:
    return [item for group in ALL_ITEMS.values() for item in group]
