"""Event-driven network simulator (the paper's NS2 substitute).

Reproduces the Fig. 3(b) experiment: protocols run over a random
80-node graph with 320 duplex 2 Mbps / 50 ms links, messages are routed
along shortest paths with store-and-forward FIFO queueing per link (so
congestion emerges as load grows), and protocol rounds act as barriers —
exactly the synchrony model the runtime engine uses.
"""

from repro.netsim.topology import Topology, paper_topology, random_connected_topology
from repro.netsim.simulator import LinkConfig, NetworkSimulator, SimMessage
from repro.netsim.transport import TranscriptReplay, replay_transcript

__all__ = [
    "LinkConfig",
    "NetworkSimulator",
    "SimMessage",
    "Topology",
    "TranscriptReplay",
    "paper_topology",
    "random_connected_topology",
    "replay_transcript",
]
