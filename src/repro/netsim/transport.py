"""Replaying protocol transcripts over the simulated network.

A protocol run (local, instant) produces a
:class:`repro.runtime.transcript.Transcript` — who sent how many bits to
whom in which round.  This module maps parties onto topology nodes and
replays the trace round by round: round ``r+1`` starts when every
message of round ``r`` has been delivered (the synchronous barrier the
engine's semantics define).  The result is the *communication time* of
the protocol on the Fig. 3(b) network; adding per-party computation time
from the cost model gives the total execution time the figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.math.rng import RNG, SeededRNG
from repro.netsim.simulator import LinkConfig, NetworkSimulator, SimMessage
from repro.netsim.topology import Topology
from repro.runtime.channels import Message
from repro.runtime.faults import SendVerdict
from repro.runtime.transcript import Transcript


class LossyLinkFaults:
    """The runtime engine's fault layer speaking netsim's lossy-link model.

    Where :class:`~repro.runtime.faults.FaultInjector` injects *targeted*
    faults (one spec, one culprit), this adapter models an unreliable
    *network*: every submitted message is independently lost with
    probability ``loss_rate``, drawn by the same seeded Bernoulli rule as
    :meth:`NetworkSimulator._hop_lost`.  A loss surfaces to the engine as
    a retransmittable drop, so the protocol supervisor's bounded-retry
    loop plays the role the simulator's per-hop retransmit timer plays at
    the packet level — the e2e lossy test drives both layers from one
    run.  Retransmitted copies pass through here again, so a retry can be
    lost too (bounded by the supervisor's ``max_retries``).
    """

    def __init__(
        self,
        loss_rate: float,
        rng: Optional[RNG] = None,
        phase_of: Optional[Callable[[str], str]] = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.loss_rate = loss_rate
        self.rng = rng if rng is not None else SeededRNG(0)
        self.phase_of = phase_of or (lambda tag: tag)
        self.sends = 0
        self.losses = 0

    def _lost(self) -> bool:
        if self.loss_rate <= 0.0:
            return False
        return self.rng.randbits(30) / float(1 << 30) < self.loss_rate

    def on_send(self, message: Message, round: int) -> SendVerdict:
        self.sends += 1
        if self._lost():
            self.losses += 1
            return SendVerdict(lost=True)
        return SendVerdict(deliveries=[(None, message)])


@dataclass
class TranscriptReplay:
    """Timing results of replaying one transcript.

    ``message_count`` counts *logical* transcript entries;
    ``wire_messages`` counts the frames actually injected into the
    simulator — for a measured-wire transcript these differ (coalesced
    batch members fold into their carrier frame, uncoalesced bitwise
    broadcasts fan out per fragment).  For declared-size transcripts the
    two are equal.
    """

    total_time_s: float
    round_times_s: List[float] = field(default_factory=list)
    total_bits: int = 0
    message_count: int = 0
    wire_messages: int = 0

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8

    @property
    def rounds(self) -> int:
        return len(self.round_times_s)


def replay_transcript(
    transcript: Transcript,
    topology: Topology,
    link: LinkConfig = LinkConfig(),
    *,
    simulator: Optional[NetworkSimulator] = None,
) -> TranscriptReplay:
    """Simulate the transcript's messages over the topology.

    Parties must already be placed (``topology.place_parties``).  Pass a
    pre-built ``simulator`` to control its RNG / retransmit settings and
    inspect :attr:`NetworkSimulator.retransmissions` afterwards (the
    lossy-link e2e test does); ``link`` is ignored in that case.
    """
    if simulator is None:
        simulator = NetworkSimulator(topology, link)
    by_round = transcript.by_round()
    round_times: List[float] = []
    clock = 0.0
    total_bits = 0
    message_count = 0
    wire_messages = 0
    for round_index in sorted(by_round):
        batch: List[SimMessage] = []
        # Coalesced batch members (frames == 0) ride in the frame of the
        # most recent entry on the same directed channel this round.
        carrier: Dict[tuple, SimMessage] = {}
        for entry in by_round[round_index]:
            message_count += 1
            total_bits += entry.size_bits
            channel = (entry.src, entry.dst)
            if entry.frames == 0 and channel in carrier:
                carrier[channel].size_bits += entry.size_bits
                continue
            fragments = max(1, entry.frames)
            # An uncoalesced multi-fragment entry (per-bit broadcast)
            # fans out into `frames` wire messages splitting its bits.
            base, remainder = divmod(entry.size_bits, fragments)
            for index in range(fragments):
                sim_message = SimMessage(
                    src_node=topology.node_of(entry.src),
                    dst_node=topology.node_of(entry.dst),
                    size_bits=base + (remainder if index == 0 else 0),
                    inject_time=clock,
                    label=entry.tag,
                )
                batch.append(sim_message)
                wire_messages += 1
            carrier[channel] = batch[-fragments]
        finish = simulator.deliver(batch)
        finish = max(finish, clock)
        round_times.append(finish - clock)
        clock = finish
    return TranscriptReplay(
        total_time_s=clock,
        round_times_s=round_times,
        total_bits=total_bits,
        message_count=message_count,
        wire_messages=wire_messages,
    )


def synthetic_round_trace(
    rounds: int,
    messages_per_round: int,
    bits_per_message: int,
    party_ids: List[int],
) -> Transcript:
    """Build a synthetic all-to-all-style transcript for cost modelling.

    Used for protocols we account analytically (the SS framework's
    multiplication rounds): each round carries ``messages_per_round``
    messages of ``bits_per_message`` bits round-robin across party pairs.
    """
    transcript = Transcript()
    n = len(party_ids)
    if n < 2:
        raise ValueError("need at least two parties")
    pair_index = 0
    for round_index in range(rounds):
        for _ in range(messages_per_round):
            src = party_ids[pair_index % n]
            dst = party_ids[(pair_index + 1 + (pair_index // n) % (n - 1)) % n]
            if dst == src:
                dst = party_ids[(pair_index + 1) % n]
            transcript.record(round_index, src, dst, "synthetic", bits_per_message)
            pair_index += 1
    return transcript
