"""Replaying protocol transcripts over the simulated network.

A protocol run (local, instant) produces a
:class:`repro.runtime.transcript.Transcript` — who sent how many bits to
whom in which round.  This module maps parties onto topology nodes and
replays the trace round by round: round ``r+1`` starts when every
message of round ``r`` has been delivered (the synchronous barrier the
engine's semantics define).  The result is the *communication time* of
the protocol on the Fig. 3(b) network; adding per-party computation time
from the cost model gives the total execution time the figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.netsim.simulator import LinkConfig, NetworkSimulator, SimMessage
from repro.netsim.topology import Topology
from repro.runtime.transcript import Transcript


@dataclass
class TranscriptReplay:
    """Timing results of replaying one transcript."""

    total_time_s: float
    round_times_s: List[float] = field(default_factory=list)
    total_bits: int = 0
    message_count: int = 0

    @property
    def rounds(self) -> int:
        return len(self.round_times_s)


def replay_transcript(
    transcript: Transcript,
    topology: Topology,
    link: LinkConfig = LinkConfig(),
) -> TranscriptReplay:
    """Simulate the transcript's messages over the topology.

    Parties must already be placed (``topology.place_parties``).
    """
    simulator = NetworkSimulator(topology, link)
    by_round = transcript.by_round()
    round_times: List[float] = []
    clock = 0.0
    total_bits = 0
    message_count = 0
    for round_index in sorted(by_round):
        batch: List[SimMessage] = []
        for entry in by_round[round_index]:
            batch.append(
                SimMessage(
                    src_node=topology.node_of(entry.src),
                    dst_node=topology.node_of(entry.dst),
                    size_bits=entry.size_bits,
                    inject_time=clock,
                    label=entry.tag,
                )
            )
            total_bits += entry.size_bits
            message_count += 1
        finish = simulator.deliver(batch)
        finish = max(finish, clock)
        round_times.append(finish - clock)
        clock = finish
    return TranscriptReplay(
        total_time_s=clock,
        round_times_s=round_times,
        total_bits=total_bits,
        message_count=message_count,
    )


def synthetic_round_trace(
    rounds: int,
    messages_per_round: int,
    bits_per_message: int,
    party_ids: List[int],
) -> Transcript:
    """Build a synthetic all-to-all-style transcript for cost modelling.

    Used for protocols we account analytically (the SS framework's
    multiplication rounds): each round carries ``messages_per_round``
    messages of ``bits_per_message`` bits round-robin across party pairs.
    """
    transcript = Transcript()
    n = len(party_ids)
    if n < 2:
        raise ValueError("need at least two parties")
    pair_index = 0
    for round_index in range(rounds):
        for _ in range(messages_per_round):
            src = party_ids[pair_index % n]
            dst = party_ids[(pair_index + 1 + (pair_index // n) % (n - 1)) % n]
            if dst == src:
                dst = party_ids[(pair_index + 1) % n]
            transcript.record(round_index, src, dst, "synthetic", bits_per_message)
            pair_index += 1
    return transcript
