"""Event-driven store-and-forward network simulation.

Model (per DESIGN.md §5, replacing NS2):

* every undirected edge is a duplex link: each direction has its own
  bandwidth and FIFO queue;
* a message of ``size_bits`` occupies a link for ``size_bits/bandwidth``
  seconds (serialization), then arrives after the propagation
  ``latency``; a queued message starts serializing when the link frees;
* routing is shortest-path (hop count), fixed per run;
* messages traverse hop by hop (store-and-forward).

Congestion therefore emerges naturally: many concurrent messages over a
shared link queue behind each other, which is what makes the SS
framework's round-heavy traffic collapse at large ``n`` in Fig. 3(b).

Lossy-link mode (robustness extension): with ``loss_rate > 0`` each hop
transmission is independently lost with that probability, drawn from the
simulator's seeded RNG so runs replay exactly.  A lost hop consumes the
link (the bits were sent), and the sending node retransmits after
``retransmit_timeout_s``; after ``max_retransmits`` failed attempts the
message is abandoned and recorded in :attr:`NetworkSimulator.dropped` —
the situation the protocol runtime's supervisor turns into a typed
:class:`~repro.runtime.errors.PartyTimeout`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.math.rng import RNG, SeededRNG
from repro.netsim.topology import Topology


@dataclass(frozen=True)
class LinkConfig:
    """Per-link characteristics (paper: 2 Mbps duplex, 50 ms).

    ``per_message_overhead_bits`` models transport framing (the paper
    used TCP: ≈ 40-byte TCP/IP headers plus ACK traffic — ~640 bits per
    message is a reasonable charge).  Zero by default so the base model
    stays pure; the Fig. 3(b) bench exercises both settings, because the
    overhead specifically punishes protocols sending many small
    messages (the SS baseline).

    ``loss_rate`` is the independent per-hop transmission loss
    probability (0 keeps the base model lossless).
    """

    bandwidth_bps: float = 2_000_000.0
    latency_s: float = 0.050
    per_message_overhead_bits: int = 0
    loss_rate: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")

    def with_tcp_overhead(self, bits: int = 640) -> "LinkConfig":
        return LinkConfig(
            bandwidth_bps=self.bandwidth_bps,
            latency_s=self.latency_s,
            per_message_overhead_bits=bits,
            loss_rate=self.loss_rate,
        )

    def with_loss(self, rate: float) -> "LinkConfig":
        return LinkConfig(
            bandwidth_bps=self.bandwidth_bps,
            latency_s=self.latency_s,
            per_message_overhead_bits=self.per_message_overhead_bits,
            loss_rate=rate,
        )


@dataclass
class SimMessage:
    """One message injected into the network."""

    src_node: int
    dst_node: int
    size_bits: int
    inject_time: float = 0.0
    label: str = ""
    delivered_at: Optional[float] = None
    hops: int = 0
    retransmits: int = 0


class NetworkSimulator:
    """Delivers batches of messages over a topology, tracking time.

    ``rng`` seeds the loss draws when the link is lossy (defaults to
    ``SeededRNG(0)`` so lossy runs are reproducible without ceremony);
    ``retransmit_timeout_s`` is how long a hop waits before resending a
    lost transmission and ``max_retransmits`` bounds the attempts per
    hop before the message is abandoned into :attr:`dropped`.
    """

    def __init__(
        self,
        topology: Topology,
        link: LinkConfig = LinkConfig(),
        *,
        rng: Optional[RNG] = None,
        retransmit_timeout_s: float = 0.2,
        max_retransmits: int = 5,
    ):
        self.topology = topology
        self.link = link
        self.rng = rng if rng is not None else SeededRNG(0)
        self.retransmit_timeout_s = retransmit_timeout_s
        self.max_retransmits = max_retransmits
        self._paths = topology.shortest_paths()
        self._link_free_at: Dict[Tuple[int, int], float] = {}
        self._sequence = itertools.count()
        self.retransmissions = 0
        self.dropped: List[SimMessage] = []
        #: Bits actually serialized onto links, summed over every hop
        #: transmission (including lost ones — the bits were sent).
        #: With multi-hop routes this exceeds the injected byte total,
        #: which is exactly the forwarding load Fig. 3(b) charges.
        self.bits_forwarded = 0

    def reset(self) -> None:
        self._link_free_at.clear()
        self.retransmissions = 0
        self.dropped.clear()
        self.bits_forwarded = 0

    def _hop_lost(self) -> bool:
        """One seeded Bernoulli draw per hop transmission."""
        if self.link.loss_rate <= 0.0:
            return False
        return self.rng.randbits(30) / float(1 << 30) < self.link.loss_rate

    def deliver(self, messages: List[SimMessage]) -> float:
        """Simulate a batch of concurrently injected messages.

        Mutates each message's ``delivered_at``; returns the completion
        time of the batch (max delivery time; 0.0 for an empty batch).
        Messages whose retransmit budget runs out stay undelivered
        (``delivered_at is None``) and are appended to :attr:`dropped`.
        """
        # Heap of (event_time, tiebreak, message, next_hop_index, attempts).
        heap: List[Tuple[float, int, SimMessage, int, int]] = []
        for message in messages:
            path = self._path_for(message)
            if len(path) == 1:
                message.delivered_at = message.inject_time
                continue
            heapq.heappush(
                heap, (message.inject_time, next(self._sequence), message, 0, 0)
            )
        finish = max((m.delivered_at or 0.0 for m in messages), default=0.0)
        while heap:
            arrival, _, message, hop_index, attempts = heapq.heappop(heap)
            path = self._path_for(message)
            u, v = path[hop_index], path[hop_index + 1]
            key = (u, v)
            start = max(arrival, self._link_free_at.get(key, 0.0))
            wire_bits = message.size_bits + self.link.per_message_overhead_bits
            serialization = wire_bits / self.link.bandwidth_bps
            self._link_free_at[key] = start + serialization
            self.bits_forwarded += wire_bits
            if self._hop_lost():
                # The bits were sent (link stays busy) but never arrive;
                # the hop's sender notices after the timeout and resends.
                if attempts < self.max_retransmits:
                    self.retransmissions += 1
                    message.retransmits += 1
                    retry_at = start + serialization + self.retransmit_timeout_s
                    heapq.heappush(
                        heap,
                        (retry_at, next(self._sequence), message, hop_index,
                         attempts + 1),
                    )
                else:
                    self.dropped.append(message)
                continue
            delivered = start + serialization + self.link.latency_s
            message.hops += 1
            if hop_index + 2 == len(path):
                message.delivered_at = delivered
                finish = max(finish, delivered)
            else:
                heapq.heappush(
                    heap,
                    (delivered, next(self._sequence), message, hop_index + 1, 0),
                )
        return finish

    def _path_for(self, message: SimMessage) -> List[int]:
        try:
            return self._paths[message.src_node][message.dst_node]
        except KeyError:
            raise ValueError(
                f"no path from node {message.src_node} to {message.dst_node}"
            )

    def path_length(self, src_node: int, dst_node: int) -> int:
        return len(self._paths[src_node][dst_node]) - 1

    def average_path_length(self) -> float:
        nodes = list(self.topology.graph.nodes)
        total, count = 0, 0
        for src in nodes:
            for dst in nodes:
                if src == dst:
                    continue
                total += len(self._paths[src][dst]) - 1
                count += 1
        return total / count if count else 0.0
