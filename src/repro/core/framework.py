"""One-call orchestration of a full framework run (paper Fig. 1).

:class:`GroupRankingFramework` wires an initiator and ``n`` participants
into the runtime engine, runs the three phases to completion, and
returns a :class:`FrameworkResult` carrying the per-participant ranks,
the initiator's verified top-k selection, the full message transcript
and per-party metrics — everything the evaluation section consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.gain import (
    AttributeSchema,
    InitiatorInput,
    ParticipantInput,
    partial_gain,
)
from repro.core.parties import (
    FrameworkConfig,
    InitiatorOutput,
    InitiatorParty,
    ParticipantParty,
)
from repro.math.rng import RNG, SeededRNG
from repro.runtime.engine import Engine
from repro.runtime.metrics import PartyMetrics
from repro.runtime.transcript import Transcript

__all__ = ["FrameworkConfig", "FrameworkResult", "GroupRankingFramework"]


@dataclass
class FrameworkResult:
    """Everything observable after a run."""

    ranks: Dict[int, int]                  # participant id -> final rank
    initiator_output: InitiatorOutput
    transcript: Transcript
    metrics: Dict[int, PartyMetrics]
    rounds: int
    betas: Dict[int, int]                  # participant id -> unsigned β (for analysis)

    def selected_ids(self) -> List[int]:
        return [party_id for party_id, _, _ in self.initiator_output.selected]

    def participant_metrics(self) -> List[PartyMetrics]:
        return [m for pid, m in sorted(self.metrics.items()) if pid != 0]

    def max_participant_multiplications(self) -> int:
        return max(
            m.ops.equivalent_multiplications for m in self.participant_metrics()
        )


class GroupRankingFramework:
    """Build, run and check a privacy-preserving group ranking instance."""

    def __init__(
        self,
        config: FrameworkConfig,
        initiator_input: InitiatorInput,
        participant_inputs: Sequence[ParticipantInput],
        rng: Optional[RNG] = None,
    ):
        if len(participant_inputs) != config.num_participants:
            raise ValueError(
                f"config says n={config.num_participants} but "
                f"{len(participant_inputs)} inputs given"
            )
        self.config = config
        self.initiator_input = initiator_input
        self.participant_inputs = list(participant_inputs)
        self._rng = rng or SeededRNG(0)

    def run(self) -> FrameworkResult:
        config = self.config
        worker_pool = None
        if config.workers > 1:
            from repro.runtime.parallel import WorkerPool

            worker_pool = WorkerPool(config.workers)
        engine = Engine(metered_groups=[config.group], worker_pool=worker_pool)
        rng = self._rng
        initiator = InitiatorParty(
            config, self.initiator_input, _fork(rng, "initiator")
        )
        engine.add_party(initiator)
        participants: List[ParticipantParty] = []
        for j, secret_input in enumerate(self.participant_inputs, start=1):
            party = ParticipantParty(config, j, secret_input, _fork(rng, f"P{j}"))
            engine.add_party(party)
            participants.append(party)
        try:
            outputs = engine.run()
        finally:
            if worker_pool is not None:
                worker_pool.shutdown()
        # Kept for the security-game harness, which inspects *adversarial*
        # parties' internals after a run.
        self.last_parties = engine.parties
        ranks = {party.party_id: party.rank for party in participants}
        betas = {party.party_id: party.beta_unsigned for party in participants}
        return FrameworkResult(
            ranks=ranks,
            initiator_output=outputs[0],
            transcript=engine.transcript,
            metrics={pid: party.metrics for pid, party in engine.parties.items()},
            rounds=engine.transcript.rounds,
            betas=betas,
        )

    # -- reference computations for verification --------------------------------
    def expected_partial_gains(self) -> Dict[int, int]:
        return {
            j: partial_gain(self.config.schema, self.initiator_input, values)
            for j, values in enumerate(self.participant_inputs, start=1)
        }

    def expected_ranks(self) -> Dict[int, int]:
        """Rank each participant would get with in-the-clear sorting.

        Rank of ``j`` is ``1 + #{i : p_i > p_j}``; equal partial gains
        share a rank, exactly as the framework's zero-count does for
        equal β values.
        """
        gains = self.expected_partial_gains()
        return {
            j: 1 + sum(1 for other in gains.values() if other > mine)
            for j, mine in gains.items()
        }

    def check_result(self, result: FrameworkResult) -> List[str]:
        """Compare a run against the in-the-clear reference.

        Returns a list of discrepancies (empty means the run is correct).
        Participants whose partial gains tie may legitimately receive
        adjacent ranks depending on the masking draw, so ties accept a
        range.
        """
        problems: List[str] = []
        gains = self.expected_partial_gains()
        for j, rank in result.ranks.items():
            strictly_better = sum(1 for g in gains.values() if g > gains[j])
            ties = sum(1 for g in gains.values() if g == gains[j])  # includes self
            if not strictly_better + 1 <= rank <= strictly_better + ties:
                problems.append(
                    f"P{j}: rank {rank} outside [{strictly_better + 1}, "
                    f"{strictly_better + ties}]"
                )
        expected_selected = {
            j for j, rank in result.ranks.items() if rank <= self.config.k
        }
        if set(result.selected_ids()) != expected_selected:
            problems.append(
                f"initiator selected {sorted(result.selected_ids())}, "
                f"ranks imply {sorted(expected_selected)}"
            )
        if not result.initiator_output.verified:
            problems.append(
                f"initiator flagged anomalies: {result.initiator_output.anomalies}"
            )
        return problems


def _fork(rng: RNG, label: str) -> RNG:
    """Give each party its own stream when the base RNG supports forking."""
    fork = getattr(rng, "fork", None)
    if callable(fork):
        return fork(label)
    return rng
