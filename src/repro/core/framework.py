"""One-call orchestration of a full framework run (paper Fig. 1).

:class:`GroupRankingFramework` wires an initiator and ``n`` participants
into the runtime engine, runs the three phases to completion, and
returns a :class:`FrameworkResult` carrying the per-participant ranks,
the initiator's verified top-k selection, the full message transcript
and per-party metrics — everything the evaluation section consumes.

Dropout recovery (``config.recovery=True``, an extension — the paper
assumes every party stays live): when an attempt fails with a *typed,
blamed* error (a crash surfacing as :class:`PartyTimeout`, or a
:class:`ProtocolAbort` from validation), the blamed participant is
excluded and the run deterministically restarts over the survivors:

* if every survivor already recovered its masked gain β in the failed
  attempt (the faulty party died *after* phase 1 — e.g. mid-keying,
  before publishing its β-bit encryptions, or mid-chain), only phase 2
  restarts: the survivors establish a fresh distributed key and re-run
  the comparison and the decrypt–rerandomize–shuffle chain among
  themselves, reusing their β values (all masked under the same ρ, so
  their order is still the gain order);
* otherwise (the fault hit phase 1 itself) the whole protocol restarts
  over the survivors, including a fresh ρ.

Restart determinism: attempt ``a > 0`` forks every party RNG under an
``"A{a}|"``-prefixed label, so reruns are seeded functions of (base
seed, attempt number) and a replay with the same fault plan is
byte-identical.  The fault injector itself is shared across attempts —
its per-spec match counters keep counting, so a ``count=1`` fault does
not re-fire on the rerun.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.gain import (
    AttributeSchema,
    InitiatorInput,
    ParticipantInput,
    partial_gain,
)
from repro.core.parties import (
    INITIATOR_ID,
    FrameworkConfig,
    InitiatorOutput,
    InitiatorParty,
    ParticipantParty,
    phase_of_tag,
)
from repro.math import backend
from repro.math.rng import RNG, SeededRNG
from repro.runtime.channels import WireStats, WireTransport
from repro.runtime.engine import Engine
from repro.runtime.errors import PartyTimeout, ProtocolAbort, ProtocolError
from repro.runtime.faults import FaultInjector, FaultSpec
from repro.runtime.metrics import PartyMetrics
from repro.runtime.supervisor import Supervisor
from repro.runtime.transcript import Transcript

__all__ = ["FrameworkConfig", "FrameworkResult", "GroupRankingFramework"]


@dataclass
class FrameworkResult:
    """Everything observable after a run."""

    ranks: Dict[int, int]                  # participant id -> final rank
    initiator_output: InitiatorOutput
    transcript: Transcript
    metrics: Dict[int, PartyMetrics]
    rounds: int
    betas: Dict[int, int]                  # participant id -> unsigned β (for analysis)
    attempts: int = 1                      # 1 = no recovery was needed
    excluded: List[int] = field(default_factory=list)  # blamed & dropped ids
    # Parties killed by a restartable fault and brought back from their
    # durable checkpoints (they are NOT in ``excluded``).
    rejoins: int = 0
    # Wire-path accounting (None for legacy declared-size runs).  After
    # a recovery, stats cover the final (successful) attempt.
    wire_stats: Optional[WireStats] = None

    def selected_ids(self) -> List[int]:
        return [party_id for party_id, _, _ in self.initiator_output.selected]

    def participant_metrics(self) -> List[PartyMetrics]:
        return [m for pid, m in sorted(self.metrics.items()) if pid != 0]

    def max_participant_multiplications(self) -> int:
        return max(
            m.ops.equivalent_multiplications for m in self.participant_metrics()
        )

    def total_participant_multiplications(self) -> int:
        """Whole-cohort group work: the benchmark's flat-vs-sharded metric."""
        return sum(
            m.ops.equivalent_multiplications for m in self.participant_metrics()
        )


class GroupRankingFramework:
    """Build, run and check a privacy-preserving group ranking instance."""

    def __init__(
        self,
        config: FrameworkConfig,
        initiator_input: InitiatorInput,
        participant_inputs: Sequence[ParticipantInput],
        rng: Optional[RNG] = None,
    ):
        if len(participant_inputs) != config.num_participants:
            raise ValueError(
                f"config says n={config.num_participants} but "
                f"{len(participant_inputs)} inputs given"
            )
        self.config = config
        self.initiator_input = initiator_input
        self.participant_inputs = list(participant_inputs)
        self._rng = rng or SeededRNG(0)

    def run(
        self,
        faults: Union[FaultInjector, Sequence[FaultSpec], None] = None,
        *,
        resume: bool = False,
        known_betas: Optional[Dict[int, int]] = None,
    ) -> FrameworkResult:
        """Run the framework, optionally under an injected fault plan.

        Without ``config.recovery`` any typed failure propagates to the
        caller (naming the blamed party).  With it, blamed participants
        are excluded and the run restarts over the survivors until it
        completes or fewer than 2 participants remain.

        ``resume=True`` (requires ``config.checkpoint_dir``) restarts a
        run whose *process* died: durable β values are harvested from
        the newest on-disk attempt, and when every active participant
        has one the new attempt re-enters at phase 2 — the crashed
        process's phase-1 work is not redone.

        ``known_betas`` (every active participant's masked gain, all
        drawn under one ρ) skips phase 1 entirely and runs phase 2
        onward — the hierarchical composition uses this to hand each
        shard its members' β, and benchmarks use it to meter phase 2 in
        isolation.

        With ``0 < config.shard_size < n`` the run is dispatched to the
        hierarchical composition (:mod:`repro.sharding.hierarchy`):
        phase 1 once globally, phase 2 inside concurrent shards, a
        secret-shared champion-aggregation round, then the global
        submission phase.  The result is then a
        :class:`~repro.sharding.hierarchy.HierarchicalResult`.

        The whole run (every retry attempt included) executes under
        ``config.backend``; the previous process-wide backend is
        restored on exit.  Backends are transcript-equivalent, so this
        scoping affects speed only.
        """
        config = self.config
        if config.transport == "tcp":
            from repro.runtime.transport import run_distributed

            # Party processes pick their own backend from the config;
            # the coordinator itself does no group arithmetic.
            return run_distributed(
                self, faults, resume=resume, known_betas=known_betas
            )
        if 0 < config.shard_size < config.num_participants:
            from repro.sharding.hierarchy import run_hierarchical

            with backend.use_backend(config.backend):
                return run_hierarchical(
                    self, faults, resume=resume, known_betas=known_betas
                )
        with backend.use_backend(config.backend):
            return self._run_with_recovery(faults, resume, known_betas)

    def _make_checkpoints(self):
        """A checkpoint manager when the config asks for one."""
        if self.config.checkpoint_dir is None:
            return None
        from repro.runtime.checkpoint import CheckpointManager

        return CheckpointManager(
            self.config.checkpoint_dir, sync_every=self.config.checkpoint_every
        )

    def _run_with_recovery(
        self,
        faults: Union[FaultInjector, Sequence[FaultSpec], None],
        resume: bool = False,
        seed_betas: Optional[Dict[int, int]] = None,
    ) -> FrameworkResult:
        config = self.config
        injector = self._make_injector(faults)
        active = list(config.participant_ids)
        excluded: List[int] = []
        known_betas: Dict[int, int] = dict(seed_betas) if seed_betas else {}
        attempt = 0
        manager = self._make_checkpoints()
        # Exposed for tests/operators: rejoin bookkeeping lives here.
        self.last_checkpoints = manager
        if resume and not known_betas:
            if manager is None:
                raise ValueError("resume=True requires config.checkpoint_dir")
            known_betas, attempt = manager.resume_state(active)
        try:
            while True:
                try:
                    result = self._run_attempt(
                        active, known_betas, attempt, injector, manager
                    )
                except (PartyTimeout, ProtocolAbort) as failure:
                    blamed = failure.blamed
                    if not (
                        config.recovery
                        and blamed is not None
                        and blamed != INITIATOR_ID
                        and blamed in active
                    ):
                        raise
                    if len(active) - 1 < 2:
                        raise ProtocolError(
                            f"cannot recover: excluding P{blamed} leaves fewer "
                            "than 2 participants"
                        ) from failure
                    active = [j for j in active if j != blamed]
                    excluded.append(blamed)
                    known_betas = self._harvest_betas(active)
                    attempt += 1
                    continue
                result.attempts = attempt + 1
                result.excluded = list(excluded)
                return result
        finally:
            if manager is not None:
                manager.close()

    def _make_injector(self, faults):
        # Anything exposing on_send (a FaultInjector, netsim's
        # LossyLinkFaults, a test double) plugs in directly; a bare
        # sequence of FaultSpec is wrapped into an injector.
        if faults is None or hasattr(faults, "on_send"):
            return faults
        return FaultInjector(
            list(faults), rng=_fork(self._rng, "faults"), phase_of=phase_of_tag
        )

    def _harvest_betas(self, survivors: Sequence[int]) -> Dict[int, int]:
        """β values recoverable from the failed attempt's survivor objects.

        Valid for a phase-2-only restart iff *every* survivor completed
        phase 1 in the failed attempt — all such β share one ρ, so their
        order is the gain order.  A partial harvest is discarded (mixing
        β masked under different ρ would corrupt the ranking).
        """
        harvested: Dict[int, int] = {}
        for j in survivors:
            party = getattr(self, "last_parties", {}).get(j)
            beta = getattr(party, "beta_unsigned", None)
            if beta is None:
                return {}
            harvested[j] = beta
        return harvested

    def _run_attempt(
        self,
        active: List[int],
        known_betas: Dict[int, int],
        attempt: int,
        injector: Optional[FaultInjector],
        manager=None,
    ) -> FrameworkResult:
        config = self.config
        worker_pool = None
        if config.workers > 1:
            from repro.runtime.parallel import WorkerPool

            worker_pool = WorkerPool(config.workers)
        supervisor = Supervisor(
            timeout_rounds=config.timeout_rounds,
            max_retries=config.max_retries,
            phase_of=phase_of_tag,
            adaptive=config.adaptive_timeouts,
        )
        transport = None
        if config.wire != "declared":
            transport = WireTransport(
                config.group,
                codec=config.wire_codec,
                coalesce=config.coalesce,
                mode=config.wire,
            )
        rng = self._rng
        prefix = "" if attempt == 0 else f"A{attempt}|"
        resume = bool(known_betas) and all(j in known_betas for j in active)

        def build_party(party_id: int, known_beta: Optional[int] = None):
            """Construct one party exactly as this attempt does.

            Doubles as the checkpoint manager's rebuild factory: a
            killed-and-rejoining party is reconstructed through the very
            same closure (same RNG fork labels, same active set), so its
            deterministic replay starts from an identical object.
            ``known_beta`` is the phase-2 rehydration variant, where the
            restored RNG state replaces the fork-label determinism.
            """
            if party_id == INITIATOR_ID:
                return InitiatorParty(
                    config,
                    self.initiator_input,
                    _fork(rng, prefix + "initiator"),
                    active_ids=active,
                    run_gain_phase=not resume,
                )
            beta = known_beta
            if beta is None and resume:
                beta = known_betas.get(party_id)
            return ParticipantParty(
                config,
                party_id,
                self.participant_inputs[party_id - 1],
                _fork(rng, prefix + f"P{party_id}"),
                active_ids=active,
                known_beta=beta,
            )

        if manager is not None:
            manager.start_attempt(attempt, build_party)
        engine = Engine(
            metered_groups=[config.group],
            worker_pool=worker_pool,
            faults=injector,
            supervisor=supervisor,
            wire=transport,
            checkpoints=manager,
        )
        engine.add_party(build_party(INITIATOR_ID))
        participants: List[ParticipantParty] = []
        for j in active:
            party = build_party(j)
            engine.add_party(party)
            participants.append(party)
        if worker_pool is not None and manager is not None:
            worker_pool.register_drain(
                lambda: manager.persist_pool_cursors(engine.parties)
            )
        # Kept for the security-game harness (which inspects *adversarial*
        # parties' internals) and for β harvesting after a failed attempt.
        self.last_parties = engine.parties
        # Kept so tests/operators can read retransmit/timeout counters
        # and the adaptive-deadline state after the run.
        self.last_supervisor = supervisor
        try:
            outputs = engine.run()
        finally:
            if worker_pool is not None:
                worker_pool.shutdown()
        # A rejoined party's live object replaced the original in the
        # engine; read final state from the engine's view, not the
        # construction-time list.
        participants = [engine.parties[j] for j in active]
        ranks = {party.party_id: party.rank for party in participants}
        betas = {party.party_id: party.beta_unsigned for party in participants}
        return FrameworkResult(
            rejoins=supervisor.rejoins,
            ranks=ranks,
            initiator_output=outputs[0],
            transcript=engine.transcript,
            metrics={pid: party.metrics for pid, party in engine.parties.items()},
            rounds=engine.transcript.rounds,
            betas=betas,
            wire_stats=transport.stats() if transport is not None else None,
        )

    # -- reference computations for verification --------------------------------
    def expected_partial_gains(self) -> Dict[int, int]:
        return {
            j: partial_gain(self.config.schema, self.initiator_input, values)
            for j, values in enumerate(self.participant_inputs, start=1)
        }

    def expected_ranks(self, among: Optional[Sequence[int]] = None) -> Dict[int, int]:
        """Rank each participant would get with in-the-clear sorting.

        Rank of ``j`` is ``1 + #{i : p_i > p_j}``; equal partial gains
        share a rank, exactly as the framework's zero-count does for
        equal β values.  ``among`` restricts the comparison to a
        survivor subset (ranks are relative to the parties actually
        ranked, so dropout runs rank among survivors only).
        """
        gains = self.expected_partial_gains()
        if among is not None:
            gains = {j: gains[j] for j in among}
        return {
            j: 1 + sum(1 for other in gains.values() if other > mine)
            for j, mine in gains.items()
        }

    def check_result(self, result: FrameworkResult) -> List[str]:
        """Compare a run against the in-the-clear reference.

        Returns a list of discrepancies (empty means the run is correct).
        Participants whose partial gains tie may legitimately receive
        adjacent ranks depending on the masking draw, so ties accept a
        range.  After a recovery run, ranks are checked among the
        survivors (``result.ranks``'s key set) only.

        Hierarchical results carry exact ranks for top-k winners only
        (everyone else holds a lower bound), so the sharded branch
        checks winners against the in-the-clear reference and only the
        bound's validity for the rest.
        """
        if getattr(result, "shard_sizes", None):
            return self._check_hierarchical(result)
        problems: List[str] = []
        gains = {
            j: g for j, g in self.expected_partial_gains().items() if j in result.ranks
        }
        for j, rank in result.ranks.items():
            strictly_better = sum(1 for g in gains.values() if g > gains[j])
            ties = sum(1 for g in gains.values() if g == gains[j])  # includes self
            if not strictly_better + 1 <= rank <= strictly_better + ties:
                problems.append(
                    f"P{j}: rank {rank} outside [{strictly_better + 1}, "
                    f"{strictly_better + ties}]"
                )
        expected_selected = {
            j for j, rank in result.ranks.items() if rank <= self.config.k
        }
        if set(result.selected_ids()) != expected_selected:
            problems.append(
                f"initiator selected {sorted(result.selected_ids())}, "
                f"ranks imply {sorted(expected_selected)}"
            )
        if not result.initiator_output.verified:
            problems.append(
                f"initiator flagged anomalies: {result.initiator_output.anomalies}"
            )
        return problems

    def _check_hierarchical(self, result: FrameworkResult) -> List[str]:
        """Sharded-run counterpart of :meth:`check_result`.

        Winners (rank ≤ k) must sit inside their in-the-clear tie range
        and must all be gain-eligible for the top k; non-winners carry a
        rank *lower bound*, which must exceed k and never undercut the
        true rank.  Under a gain tie that straddles the k-th place the
        aggregation sort breaks the tie arbitrarily, so the selected set
        is checked for eligibility and size, not exact identity.
        """
        problems: List[str] = []
        k = self.config.k
        gains = {
            j: g for j, g in self.expected_partial_gains().items() if j in result.ranks
        }
        winners = {j: r for j, r in result.ranks.items() if r <= k}
        for j, rank in result.ranks.items():
            strictly_better = sum(1 for g in gains.values() if g > gains[j])
            ties = sum(1 for g in gains.values() if g == gains[j])  # includes self
            if j in winners:
                if not strictly_better + 1 <= rank <= strictly_better + ties:
                    problems.append(
                        f"P{j}: winner rank {rank} outside "
                        f"[{strictly_better + 1}, {strictly_better + ties}]"
                    )
                if strictly_better >= k:
                    problems.append(
                        f"P{j}: selected as a winner but {strictly_better} "
                        f"parties have strictly higher gain (k={k})"
                    )
            elif rank <= k:
                problems.append(f"P{j}: non-winner bound {rank} not above k={k}")
            elif rank > strictly_better + ties:
                problems.append(
                    f"P{j}: rank bound {rank} exceeds worst possible rank "
                    f"{strictly_better + ties}"
                )
        if len(winners) < min(k, len(result.ranks)):
            problems.append(
                f"only {len(winners)} winners for k={k} among "
                f"{len(result.ranks)} ranked parties"
            )
        if set(result.selected_ids()) != set(winners):
            problems.append(
                f"initiator selected {sorted(result.selected_ids())}, "
                f"winner ranks imply {sorted(winners)}"
            )
        if not result.initiator_output.verified:
            problems.append(
                f"initiator flagged anomalies: {result.initiator_output.anomalies}"
            )
        return problems


def _fork(rng: RNG, label: str) -> RNG:
    """Give each party its own stream when the base RNG supports forking."""
    fork = getattr(rng, "fork", None)
    if callable(fork):
        return fork(label)
    return rng
