"""The paper's primary contribution: the privacy-preserving group ranking
framework (paper Fig. 1) and its identity-unlinkable multiparty sorting
core.

Public entry point: :class:`repro.core.framework.GroupRankingFramework`.
"""

from repro.core.comparison import (
    HomomorphicComparator,
    compare_bits_plain,
    tau_values_plain,
)
from repro.core.framework import FrameworkConfig, FrameworkResult, GroupRankingFramework
from repro.core.gain import (
    AttributeSchema,
    InitiatorInput,
    ParticipantInput,
    beta_bit_length,
    gain,
    partial_gain,
    to_signed,
    to_unsigned,
)
from repro.core.parties import InitiatorParty, ParticipantParty
from repro.core.shuffle import ShuffleProcessor
from repro.core.sorting_protocol import (
    SortingParty,
    UnlinkableSortResult,
    unlinkable_sort,
)

__all__ = [
    "AttributeSchema",
    "FrameworkConfig",
    "FrameworkResult",
    "GroupRankingFramework",
    "HomomorphicComparator",
    "InitiatorInput",
    "InitiatorParty",
    "ParticipantInput",
    "ParticipantParty",
    "ShuffleProcessor",
    "SortingParty",
    "UnlinkableSortResult",
    "unlinkable_sort",
    "beta_bit_length",
    "compare_bits_plain",
    "gain",
    "partial_gain",
    "tau_values_plain",
    "to_signed",
    "to_unsigned",
]
