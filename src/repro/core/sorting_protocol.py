"""The identity-unlinkable multiparty sorting protocol, standalone.

The paper's contribution (3): "an identity unlinkable multiparty sorting
protocol, in which each party is given the ranking of the individual
input but cannot link the inferred information to its owner's identity
... This protocol itself is of independent interest to the study of the
SMP sorting problem."

This module decouples that protocol from the group-ranking framework's
gain machinery: ``n`` parties each hold an arbitrary ``width``-bit
unsigned integer; at the end each party knows the *rank of her own
value* (competition ranking, 1 = largest) and nothing else, and no
coalition of up to ``n-2`` parties can link rank information to an
honest party whose rank is hidden.

The protocol is the framework's phase 2 verbatim (distributed keying
with Schnorr proofs, bitwise publication, the γ/ω/τ circuit, the
decrypt-rerandomize-shuffle chain), so its security rests on the same
lemmas; properties: linear communication rounds, ``O(w·n²)``
ciphertext traffic, up to ``n-2`` colluders tolerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.comparison import HomomorphicComparator
from repro.core.parties import TAG_BETA_BITS
from repro.core.shuffle import ShuffleProcessor
from repro.crypto.bitenc import BitwiseElGamal
from repro.crypto.distkey import DistributedKey
from repro.crypto.zkp import NonInteractiveSchnorrProof
from repro.groups.base import Group
from repro.math.rng import RNG, SeededRNG
from repro.runtime.engine import Engine
from repro.runtime.errors import ProtocolAbort, ProtocolError
from repro.runtime.party import Party
from repro.runtime.transcript import Transcript

TAG_KEY = "sort-key"
TAG_SETS = "sort-sets"
TAG_CHAIN = "sort-chain"
TAG_FINAL = "sort-final"


class SortingParty(Party):
    """One party of the standalone unlinkable sorting protocol.

    Party ids run 1..n.  Uses Fiat-Shamir proofs for key knowledge
    (fewest rounds); the framework's interactive variant is equivalent.
    """

    def __init__(self, party_id: int, n: int, group: Group, width: int,
                 value: int, rng: RNG):
        if not 1 <= party_id <= n:
            raise ValueError("party ids run from 1 to n")
        if not 0 <= value < (1 << width):
            raise ValueError(f"value must be an unsigned {width}-bit integer")
        super().__init__(party_id, rng)
        self.n = n
        self.group = group
        self.width = width
        self.value = value
        self.rank: Optional[int] = None

    @property
    def _others(self) -> List[int]:
        return [j for j in range(1, self.n + 1) if j != self.party_id]

    def protocol(self):
        group = self.group
        others = self._others
        element_bits = group.element_bits
        ciphertext_bits = 2 * element_bits

        # 1. Keying with NIZK proofs of key knowledge.
        distkey = DistributedKey(group)
        share = distkey.make_share(self.party_id, self.rng)
        distkey.register_public(self.party_id, share.public)
        nizk = NonInteractiveSchnorrProof(
            group, context=b"repro-sort|" + str(self.party_id).encode()
        )
        proof = nizk.prove(share.secret, self.rng)
        self.broadcast(
            others, TAG_KEY, (share.public, proof),
            size_bits=2 * element_bits + group.order.bit_length(),
        )
        received = yield from self.recv_from_all(others, TAG_KEY)
        for j, (their_public, their_proof) in received.items():
            peer = NonInteractiveSchnorrProof(
                group, context=b"repro-sort|" + str(j).encode()
            )
            if not peer.verify(their_public, their_proof):
                raise ProtocolAbort(f"P{j}'s key-knowledge proof failed")
            distkey.register_public(j, their_public)
        joint = distkey.joint_public_key()

        # 2. Bitwise publication.
        bitenc = BitwiseElGamal(group)
        my_bits = bitenc.encrypt(self.value, self.width, joint, self.rng)
        self.broadcast(others, TAG_BETA_BITS, my_bits,
                       size_bits=self.width * ciphertext_bits)
        other_bits = yield from self.recv_from_all(others, TAG_BETA_BITS)
        for j, bits in other_bits.items():
            if not bitenc.validate(bits, self.width):
                raise ProtocolError(f"P{j} sent a malformed bitwise ciphertext")

        # 3. Comparison circuit, flattened into my set.
        comparator = HomomorphicComparator(group)
        my_set = []
        for j in sorted(other_bits):
            my_set.extend(comparator.encrypted_taus(self.value, other_bits[j]))

        # 4. The shuffle chain (same structure as framework step 8).
        processor = ShuffleProcessor(group)
        expected = self.width * (self.n - 1)
        set_bits = expected * ciphertext_bits
        vector_bits = self.n * set_bits
        me = self.party_id

        def check(sets):
            if len(sets) != self.n or any(len(s) != expected for s in sets):
                raise ProtocolError("chain vector tampered")

        if me == 1:
            vector = [my_set]
            gathered = yield from self.recv_from_all(others, TAG_SETS)
            for j in sorted(gathered):
                vector.append(gathered[j])
            check(vector)
            vector = processor.process_vector(vector, 0, share.secret, self.rng)
            self.send(2, TAG_CHAIN, vector, size_bits=vector_bits)
            final_msg = yield from self.recv(self.n, TAG_FINAL)
            final_set = final_msg.payload
        else:
            self.send(1, TAG_SETS, my_set, size_bits=set_bits)
            chain_msg = yield from self.recv(me - 1, TAG_CHAIN)
            check(chain_msg.payload)
            vector = processor.process_vector(
                chain_msg.payload, me - 1, share.secret, self.rng
            )
            if me < self.n:
                self.send(me + 1, TAG_CHAIN, vector, size_bits=vector_bits)
                final_msg = yield from self.recv(self.n, TAG_FINAL)
                final_set = final_msg.payload
            else:
                for j in others:
                    self.send(j, TAG_FINAL, vector[j - 1], size_bits=set_bits)
                final_set = vector[me - 1]

        zeros = processor.count_zero_plaintexts(final_set, share.secret)
        self.rank = zeros + 1
        self.output = self.rank


@dataclass
class UnlinkableSortResult:
    """Each party's privately learned rank plus run accounting."""

    ranks: Dict[int, int]
    rounds: int
    transcript: Transcript

    def expected_ranks(self, values: List[int]) -> Dict[int, int]:
        return {
            i + 1: 1 + sum(1 for other in values if other > mine)
            for i, mine in enumerate(values)
        }


def unlinkable_sort(
    group: Group, values: List[int], width: int, rng: Optional[RNG] = None
) -> UnlinkableSortResult:
    """Run the standalone protocol; party ``i+1`` holds ``values[i]``."""
    rng = rng or SeededRNG(0)
    n = len(values)
    if n < 2:
        raise ValueError("sorting needs at least two parties")
    engine = Engine(metered_groups=[group])
    for party_id, value in enumerate(values, start=1):
        fork = getattr(rng, "fork", None)
        party_rng = fork(f"sort{party_id}") if callable(fork) else rng
        engine.add_party(
            SortingParty(party_id, n, group, width, value, party_rng)
        )
    outputs = engine.run()
    return UnlinkableSortResult(
        ranks=dict(sorted(outputs.items())),
        rounds=engine.transcript.rounds,
        transcript=engine.transcript,
    )
