"""The framework's two party roles (paper Fig. 1).

``InitiatorParty`` (``P_0``) holds the criterion and weight vectors,
answers the dot-product requests with the masked extended vector, acts
as a ZKP verifier, and finally collects and re-verifies the top-k
submissions.

``ParticipantParty`` (``P_j``, ``1 ≤ j ≤ n``) runs all three phases:
secure gain computation, unlinkable gain comparison (distributed keying
with ZKPs, bitwise encryption, homomorphic comparison, the shuffle
chain) and ranking submission.

Fault tolerance (beyond the paper, which assumes all parties stay live):

* both roles run over an explicit **active set** of participant ids —
  the chain successor/predecessor relation is positional in that set,
  so the framework can re-run phase 2 over the survivors of a dropout
  with the dead party simply absent;
* a participant that already knows its masked gain (``known_beta``,
  harvested from a failed attempt) skips phase 1 on the re-run, and the
  initiator correspondingly skips its dot-product service loop;
* every received message is validated — field ranges, group
  membership, proof verification, set sizes — and failures raise
  :class:`ProtocolAbort` carrying ``blamed``/``phase`` so the runtime
  can name the culprit and exclude it;
* the initiator's any-source loops are duplicate-tolerant (at-least-once
  delivery: a retransmitted or duplicated request is answered once).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.comparison import HomomorphicComparator, verify_bit_proofs_or_abort
from repro.core.gain import (
    AttributeSchema,
    InitiatorInput,
    ParticipantInput,
    initiator_extended_vector,
    participant_extended_vector,
    partial_gain,
    to_unsigned,
)
from repro.core.shuffle import ShuffleProcessor, chain_set_flaw
from repro.crypto.bitenc import BitwiseCiphertext, BitwiseElGamal
from repro.crypto.distkey import DistributedKey, ShareProofBatch
from repro.crypto.elgamal import Ciphertext
from repro.crypto.precompute import RandomnessPool
from repro.crypto.zkp import MultiVerifierSchnorrProof, NonInteractiveSchnorrProof
from repro.dotproduct.ioannidis import DotProductProtocol
from repro.groups.base import Element, Group
from repro.math.rng import RNG
from repro.runtime.errors import ProtocolAbort, ProtocolError
from repro.runtime.party import Party

INITIATOR_ID = 0

# Message tags (one per arrow in Fig. 1).
TAG_DP_REQUEST = "dp-request"
TAG_DP_RESPONSE = "dp-response"
TAG_PK_SHARE = "pk-share"
TAG_ZKP_COMMIT = "zkp-commit"
TAG_ZKP_CHALLENGE = "zkp-challenge"
TAG_ZKP_RESPONSE = "zkp-response"
TAG_ZKP_NIZK = "zkp-nizk"
TAG_BETA_BITS = "beta-bits"
TAG_TAU_SETS = "tau-sets"
TAG_CHAIN = "chain"
TAG_FINAL_SET = "final-set"
TAG_SUBMISSION = "submission"
# Synthetic transcript tag for the hierarchical composition's
# champion-aggregation round (repro.sharding): the secret-shared
# field-element traffic between shard champions, folded into the
# merged transcript as ordered-pair entries.
TAG_AGGREGATE = "shard-aggregate"

# Named protocol phases, used for blame reports and fault targeting.
PHASE_GAIN = "gain"
PHASE_KEYING = "keying"
PHASE_COMPARISON = "comparison"
PHASE_CHAIN = "chain"
PHASE_SUBMISSION = "submission"
PHASE_AGGREGATE = "aggregate"

PHASE_BY_TAG: Dict[str, str] = {
    TAG_DP_REQUEST: PHASE_GAIN,
    TAG_DP_RESPONSE: PHASE_GAIN,
    TAG_PK_SHARE: PHASE_KEYING,
    TAG_ZKP_COMMIT: PHASE_KEYING,
    TAG_ZKP_CHALLENGE: PHASE_KEYING,
    TAG_ZKP_RESPONSE: PHASE_KEYING,
    TAG_ZKP_NIZK: PHASE_KEYING,
    TAG_BETA_BITS: PHASE_COMPARISON,
    TAG_TAU_SETS: PHASE_CHAIN,
    TAG_CHAIN: PHASE_CHAIN,
    TAG_FINAL_SET: PHASE_CHAIN,
    TAG_SUBMISSION: PHASE_SUBMISSION,
    TAG_AGGREGATE: PHASE_AGGREGATE,
}


def phase_of_tag(tag: str) -> str:
    """The named framework phase a message tag belongs to."""
    return PHASE_BY_TAG.get(tag, tag)


@dataclass
class FrameworkConfig:
    """Everything public: the group, the questionnaire, and parameters.

    ``rerandomize``/``permute``/``naive_suffix`` are ablation switches
    (defaults reproduce the paper's protocol).

    Performance switches (all default-off; they change operation cost,
    never protocol values):

    * ``multiexp`` — Straus-interleaved encryption and short-scalar
      ladders in the comparison circuit.
    * ``precompute`` — per-party offline randomness pool size; each
      party pre-generates this many ``(g^r, y^r)`` pairs under the joint
      key before the online comparison phase.
    * ``workers`` — process-pool width for the comparison and shuffle
      fan-out.  ``1`` (default) runs fully serial; any value produces
      the same ranks and a byte-identical transcript for the same seed.
    * ``backend`` — arithmetic backend for all bigint work
      (:mod:`repro.math.backend`): ``"auto"`` (default; keep the
      import-time detection — gmpy2 when importable, else pure python),
      ``"python"``, or ``"gmpy2"``.  Backends are transcript-equivalent:
      the choice changes wall-clock speed only, never values, operation
      counts, or wire bytes.
    * ``batch_verify`` — verify each round's key-knowledge proofs (and,
      with ``bit_proofs``, all bit-validity proofs) with ONE
      random-linear-combination multi-exponentiation instead of one pair
      of exponentiations per proof.  On batch failure verification falls
      back to per-proof checks, so aborts blame the same party the
      unbatched protocol would; transcripts and ranks are identical
      either way.
    * ``shard_size`` — ``0`` (default) runs the paper's flat protocol;
      any value ≥ 2 switches :meth:`GroupRankingFramework.run` to the
      hierarchical composition (:mod:`repro.sharding`): phase 2 runs
      inside shards of at most this many participants, shard champions
      are ranked in a secret-shared aggregation round, and only global
      top-k winners learn (and submit) exact ranks.
    * ``collect_submissions`` — internal switch used by shard-local
      sub-runs: when off, phase 3 still runs its decline round (so the
      round structure is unchanged) but nobody submits values and the
      initiator's minimum-submission anomaly check is waived.
    * ``streaming`` — pipeline the step-8 chain: the head emits the
      vector in chunks of ``stream_chunk_sets`` comparison sets, pausing
      a round between chunks, so hop ``i+1`` decrypt–rerandomizes chunk
      ``c`` while hop ``i`` is still emitting chunk ``c+1``.  Randomness
      is drawn in the exact serial set order, so every produced element
      (and every rank) matches the unstreamed run.

    Soundness switches:

    * ``bit_proofs`` — attach a disjunctive Chaum-Pedersen proof to every
      broadcast bit encryption and verify all received ones, upgrading
      the step-6 well-formedness check from structural (shape + group
      membership) to cryptographic (each plaintext provably in {0, 1}).

    Robustness switches:

    Wire-path switches (accounting only; ranks never change):

    * ``wire`` — ``"declared"`` (default) keeps the legacy hand-declared
      sizes; ``"measured"`` routes every message through the wire codec
      and accounts real encoded bytes (payload + secure-channel
      envelope); ``"conformance"`` additionally cross-checks measured
      sizes against the declared ones and aborts on drift.
    * ``wire_codec`` — ``"v2"`` (compact varint framing + per-channel
      element interning) or ``"v1"`` (legacy fixed 4-byte framing).
    * ``coalesce`` — batch all messages one sender emits to one receiver
      within an engine round into a single framed wire message (one
      envelope per batch instead of one per bit/ciphertext).

    * ``recovery`` — when a run fails with a typed, blamed error
      (crash, timeout, validated abort), exclude the blamed participant
      and deterministically re-run over the survivors.
    * ``checkpoint_dir`` — directory for durable per-party protocol
      state (``None`` disables checkpointing).  With a checkpoint
      manager attached, parties are snapshotted at every phase boundary,
      a ``kill_restart`` fault rejoins the killed party from its durable
      state instead of excluding it, and a crashed *process* can resume
      a run with ``Framework.run(resume=True)``.  Secrets are encrypted
      at rest (see :mod:`repro.runtime.checkpoint`).
    * ``checkpoint_every`` — additionally fsync the journal every this
      many engine rounds (``0`` = phase boundaries only).
    * ``timeout_rounds``/``max_retries`` — the supervisor's per-receive
      deadline (in engine rounds) and retransmit budget per lost
      message.
    * ``validate_elements`` — group-membership-check every ciphertext
      received in the comparison and chain phases (cheap, unmetered;
      disable only for benchmarking the paper's original cost model).
    """

    group: Group
    schema: AttributeSchema
    num_participants: int
    k: int
    rho_bits: int = 15                     # paper's h
    beta_bits: int = 0                     # l; 0 means "derive from schema"
    dp_field_prime: int = 0                # 0 means "derive from beta_bits"
    dp_expansion: int = 2
    beta_mode: str = "safe"
    rerandomize: bool = True
    permute: bool = True
    naive_suffix: bool = False
    verify_zkp: bool = True
    zkp_mode: str = "interactive"   # or "fiat-shamir" (NIZK, fewer rounds)
    multiexp: bool = False
    precompute: int = 0
    workers: int = 1
    batch_verify: bool = False
    bit_proofs: bool = False
    streaming: bool = False
    stream_chunk_sets: int = 1
    adaptive_timeouts: bool = False
    recovery: bool = False
    timeout_rounds: int = 6
    max_retries: int = 2
    validate_elements: bool = True
    wire: str = "declared"          # or "measured" / "conformance"
    wire_codec: str = "v2"          # or "v1"
    coalesce: bool = True           # batch per (sender, receiver, round)
    backend: str = "auto"           # arithmetic backend: "auto"/"python"/"gmpy2"
    checkpoint_dir: Optional[str] = None   # durable state directory (None = off)
    checkpoint_every: int = 0       # extra journal fsync cadence, in rounds
    shard_size: int = 0             # 0 = flat run; ≥2 = hierarchical shards
    collect_submissions: bool = True  # off inside shard-local sub-runs
    #: ``"inproc"`` (default) runs the lockstep engine in this process;
    #: ``"tcp"`` spawns each party as its own OS process talking asyncio
    #: loopback sockets (:mod:`repro.runtime.transport`) — same values,
    #: op counts and per-channel wire bytes, real wall-clock overlap.
    transport: str = "inproc"

    def __post_init__(self):
        if self.zkp_mode not in ("interactive", "fiat-shamir"):
            raise ValueError("zkp_mode must be 'interactive' or 'fiat-shamir'")
        from repro.math import backend as arith_backend

        if self.backend not in arith_backend.backend_choices():
            raise ValueError(
                f"backend must be one of {arith_backend.backend_choices()}"
            )
        if self.wire not in ("declared", "measured", "conformance"):
            raise ValueError(
                "wire must be 'declared', 'measured' or 'conformance'"
            )
        if self.wire_codec not in ("v1", "v2"):
            raise ValueError("wire_codec must be 'v1' or 'v2'")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.precompute < 0:
            raise ValueError("precompute must be non-negative")
        if self.stream_chunk_sets < 1:
            raise ValueError("stream_chunk_sets must be at least 1")
        if self.timeout_rounds < 1:
            raise ValueError("timeout_rounds must be at least 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if self.shard_size < 0:
            raise ValueError("shard_size must be non-negative")
        if self.shard_size == 1:
            raise ValueError(
                "shard_size must be 0 (flat) or at least 2 (a shard's "
                "comparison phase needs two parties)"
            )
        if self.transport not in ("inproc", "tcp"):
            raise ValueError("transport must be 'inproc' or 'tcp'")
        if self.transport == "tcp":
            if 0 < self.shard_size < self.num_participants:
                raise ValueError(
                    "transport='tcp' does not compose with the sharded "
                    "hierarchy yet; use shard_size=0"
                )
            if self.workers > 1:
                raise ValueError(
                    "transport='tcp' already runs one process per party; "
                    "workers must be 1"
                )
        from repro.core.gain import beta_bit_length
        from repro.math.primes import next_prime

        if self.num_participants < 2:
            raise ValueError("the comparison phase needs at least 2 participants")
        if not 1 <= self.k <= self.num_participants:
            raise ValueError("k must be in [1, n]")
        if self.rho_bits < 1:
            raise ValueError("rho_bits must be positive")
        if self.beta_bits == 0:
            self.beta_bits = beta_bit_length(
                self.schema.dimension,
                self.schema.value_bits,
                self.schema.weight_bits,
                self.rho_bits,
                mode=self.beta_mode,
            )
        if self.dp_field_prime == 0:
            # The dot product w'·v' equals the signed β, |β| < 2^(l-1);
            # +8 guard bits keep centered decoding unambiguous.
            self.dp_field_prime = next_prime(1 << (self.beta_bits + 8))

    @property
    def participant_ids(self) -> List[int]:
        return list(range(1, self.num_participants + 1))

    def dot_protocol(self) -> DotProductProtocol:
        return DotProductProtocol(self.dp_field_prime, expansion=self.dp_expansion)

    def ciphertext_bits(self) -> int:
        return 2 * self.group.element_bits


@dataclass
class Submission:
    """A top-k participant's ranking-phase message to the initiator."""

    rank: int
    values: Tuple[int, ...]


@dataclass
class InitiatorOutput:
    """What P_0 ends up with."""

    selected: List[Tuple[int, int, Tuple[int, ...]]] = field(default_factory=list)
    # (party_id, claimed rank, information vector), sorted by rank.
    verified: bool = True
    anomalies: List[str] = field(default_factory=list)


class InitiatorParty(Party):
    """``P_0``: gain-computation counterpart, ZKP verifier, collector.

    ``active_ids`` restricts the run to a surviving subset of
    participants (dropout recovery); ``run_gain_phase=False`` skips the
    dot-product service loop on a phase-2 restart where every survivor
    already knows its β.
    """

    def __init__(
        self,
        config: FrameworkConfig,
        secret_input: InitiatorInput,
        rng: RNG,
        *,
        active_ids: Optional[Sequence[int]] = None,
        run_gain_phase: bool = True,
    ):
        super().__init__(INITIATOR_ID, rng)
        self.config = config
        self.secret_input = secret_input  # repro: secret
        self.active_ids: List[int] = sorted(
            active_ids if active_ids is not None else config.participant_ids
        )
        self.run_gain_phase = run_gain_phase
        self._zkp = MultiVerifierSchnorrProof(config.group)

    def snapshot_state(self):
        """Durable initiator state.  ``rho``/``rho_assignments`` are
        secrets; they live only inside the sealed record body, never in
        a record header or on disk in the clear."""
        state = super().snapshot_state()
        state.update(
            role="initiator",
            active_ids=list(self.active_ids),
            run_gain_phase=self.run_gain_phase,
            rho=getattr(self, "rho", None),
            rho_assignments=dict(getattr(self, "rho_assignments", {})),
        )
        return state

    def protocol(self):
        yield from self._phase_gain_service()
        yield from self._phase_keying_verification()
        yield from self._phase_collect_submissions()

    # -- Phase 1 -----------------------------------------------------------------
    def _phase_gain_service(self):
        """Steps 1 and 3: answer each participant's dot-product request."""
        config = self.config
        participants = self.active_ids
        dot = config.dot_protocol()

        self.set_phase(PHASE_GAIN)
        if self.run_gain_phase:
            rho = max(
                2, self.rng.randbits(config.rho_bits) | (1 << (config.rho_bits - 1))
            )
            # ρ and the per-participant ρ_j are the initiator's private
            # state; the security games read them only when the initiator
            # is adversary-controlled.
            self.rho = rho  # repro: secret
            self.rho_assignments: Dict[int, int] = {}  # repro: secret
            extended = initiator_extended_vector(config.schema, self.secret_input, rho)
            response_bits = dot.message_bits(len(extended))[1]
            pending: Set[int] = set(participants)
            while pending:
                message = yield from self.recv(None, TAG_DP_REQUEST)
                if message.src not in pending:
                    continue  # duplicate request (at-least-once delivery)
                if not dot.validate_request(message.payload):
                    raise ProtocolAbort(
                        f"P{message.src} sent a malformed dot-product request",
                        blamed=message.src, phase=PHASE_GAIN,
                    )
                pending.discard(message.src)
                # ρ_j drawn from [0, ρ) so that distinct partial gains
                # always yield strictly ordered β values (see gain.py docs).
                rho_j = self.rng.randrange(rho)
                self.rho_assignments[message.src] = rho_j
                response = dot.alice_respond(message.payload, extended, rho_j)
                self.send(
                    message.src, TAG_DP_RESPONSE, response, size_bits=response_bits
                )

    # -- Phase 2 (verifier role only) --------------------------------------------
    def _phase_keying_verification(self):
        """Check every participant's key-knowledge proof."""
        config = self.config
        participants = self.active_ids
        self.set_phase(PHASE_KEYING)
        publics: Dict[int, Element] = {}
        if config.verify_zkp and config.zkp_mode == "fiat-shamir":
            proof_batch = ShareProofBatch(
                config.group, batch=config.batch_verify, phase=PHASE_KEYING
            )
            for j in participants:
                message = yield from self.recv(j, TAG_ZKP_NIZK)
                their_public, their_proof = message.payload
                nizk = NonInteractiveSchnorrProof(
                    config.group, context=b"repro-keying|" + str(j).encode()
                )
                proof_batch.add_nizk_claim(j, their_public, their_proof, nizk)
            publics = proof_batch.verify_and_register()
        elif config.verify_zkp:
            commits: Dict[int, Element] = {}
            for j in participants:
                share_msg = yield from self.recv(j, TAG_PK_SHARE)
                publics[j] = share_msg.payload
                commit_msg = yield from self.recv(j, TAG_ZKP_COMMIT)
                commits[j] = commit_msg.payload
                challenge = self._zkp.challenge(self.rng)
                self.send(j, TAG_ZKP_CHALLENGE, challenge,
                          size_bits=config.group.order.bit_length())
            proof_batch = ShareProofBatch(
                config.group, batch=config.batch_verify, phase=PHASE_KEYING
            )
            for j in participants:
                response_msg = yield from self.recv(j, TAG_ZKP_RESPONSE)
                commitment, challenges, z = response_msg.payload
                if not config.group.eq(commitment, commits[j]):
                    raise ProtocolAbort(
                        f"P{j} answered a different commitment",
                        blamed=j, phase=PHASE_KEYING,
                    )
                proof_batch.add_transcript_claim(
                    j, publics[j], commitment, challenges, z
                )
            proof_batch.verify_and_register()

    # -- Phase 3 -----------------------------------------------------------------
    def _phase_collect_submissions(self):
        """Collect submissions, re-verify, select the top k."""
        config = self.config
        participants = self.active_ids
        self.set_phase(PHASE_SUBMISSION)
        output = InitiatorOutput()
        gains: Dict[int, int] = {}
        pending = set(participants)
        while pending:
            message = yield from self.recv(None, TAG_SUBMISSION)
            if message.src not in pending:
                continue  # duplicate submission
            pending.discard(message.src)
            submission = message.payload
            if submission is None:
                continue
            values = ParticipantInput.create(config.schema, submission.values)
            gains[message.src] = partial_gain(config.schema, self.secret_input, values)
            output.selected.append((message.src, submission.rank, submission.values))
        output.selected.sort(key=lambda item: (item[1], item[0]))
        self._verify_submissions(output, gains)
        self.output = output

    def _verify_submissions(self, output: InitiatorOutput, gains: Dict[int, int]) -> None:
        """Recompute gains of submitters; flag rank/gain inversions.

        The paper notes over-claimed rankings are detectable because the
        initiator can recompute the gain from the submitted vector.
        """
        config = self.config
        active = len(self.active_ids)
        if (
            config.collect_submissions
            and len(output.selected) < config.k
            and len(output.selected) < active
        ):
            output.anomalies.append(
                f"expected at least {min(config.k, active)} submissions, "
                f"got {len(output.selected)}"
            )
        for earlier, later in zip(output.selected, output.selected[1:]):
            if earlier[1] < later[1] and gains[earlier[0]] < gains[later[0]]:
                output.anomalies.append(
                    f"P{earlier[0]} (rank {earlier[1]}) has lower gain than "
                    f"P{later[0]} (rank {later[1]})"
                )
        output.verified = not output.anomalies


class ParticipantParty(Party):
    """``P_j``: the full three-phase participant behaviour.

    ``active_ids`` names the surviving participants this run ranks
    (defaults to all of them); ``known_beta`` carries the masked gain
    recovered in a previous attempt so a phase-2 restart skips the
    dot-product exchange entirely.
    """

    def __init__(
        self,
        config: FrameworkConfig,
        party_id: int,
        secret_input: ParticipantInput,
        rng: RNG,
        *,
        active_ids: Optional[Sequence[int]] = None,
        known_beta: Optional[int] = None,
    ):
        if party_id < 1 or party_id > config.num_participants:
            raise ValueError("participant ids run from 1 to n")
        super().__init__(party_id, rng)
        self.config = config
        self.secret_input = secret_input  # repro: secret
        self.active_ids: List[int] = sorted(
            active_ids if active_ids is not None else config.participant_ids
        )
        if party_id not in self.active_ids:
            raise ValueError(f"participant {party_id} is not in the active set")
        if len(self.active_ids) < 2:
            raise ValueError("the comparison phase needs at least 2 active parties")
        self.known_beta = known_beta
        self._zkp = MultiVerifierSchnorrProof(config.group)
        self.beta_unsigned: Optional[int] = None   # exposed for analysis/tests
        self.rank: Optional[int] = None
        # Durable-state capture points (see snapshot_state): the keying
        # share and the precompute pool, once made.
        self._key_share = None
        self._pool: Optional[RandomnessPool] = None
        # What this party saw when decrypting her own final set; the
        # security games read this ONLY from adversarial parties.
        self.final_residues: List[Element] = []

    def snapshot_state(self):
        """Durable participant state, captured at phase boundaries.

        The ``keying``-boundary snapshot is the rejoin entry point: it is
        taken *before* the key-share draw, so a twin rebuilt with
        ``known_beta`` and the recorded RNG position re-derives the
        identical share, pool, and chain randomness.  The secrets here
        (β, the share's secret exponent) exist only inside the sealed
        record body.
        """
        state = super().snapshot_state()
        share = self._key_share
        pool = self._pool
        state.update(
            role="participant",
            active_ids=list(self.active_ids),
            position=self._position,
            beta=self.beta_unsigned,
            rank=self.rank,
            share=(share.party_id, share.secret, share.public) if share else None,
            pool_cursor=pool.cursor if pool is not None else None,
        )
        return state

    # -- helpers ---------------------------------------------------------------
    @property
    def _others(self) -> List[int]:
        return [j for j in self.active_ids if j != self.party_id]

    @property
    def _position(self) -> int:
        """This party's index in the (sorted) active set — the chain slot."""
        return self.active_ids.index(self.party_id)

    # -- misbehaviour hooks (overridden by the fault-injection tests) ----------
    def _proof_secret(self, secret: int) -> int:
        """The secret used in the key-knowledge proof (honest: the real one)."""
        return secret

    def _published_beta_bits(self, bitwise: BitwiseElGamal, beta: int,
                             joint_key) -> BitwiseCiphertext:
        """The bitwise ciphertext this party publishes (honest: E(β))."""
        return bitwise.encrypt(beta, self.config.beta_bits, joint_key, self.rng)

    def _published_beta_bits_with_proofs(self, bitwise: BitwiseElGamal, beta: int,
                                         joint_key):
        """Bit ciphertexts plus validity proofs (honest: proofs of E(β))."""
        return bitwise.encrypt_with_proofs(
            beta, self.config.beta_bits, joint_key, self.rng
        )

    def _claimed_rank(self, rank: int) -> int:
        """The rank this party submits to the initiator (honest: her own)."""
        return rank

    def _outgoing_tau_set(self, my_set: List[Ciphertext]) -> List[Ciphertext]:
        """The comparison set this party ships to the chain head (honest: all)."""
        return my_set

    def protocol(self):
        if self.known_beta is not None:
            beta = self.known_beta       # phase-2 restart: β already known
        else:
            beta = yield from self._phase_gain_computation()
        self.beta_unsigned = beta
        rank = yield from self._phase_unlinkable_comparison(beta)
        self.rank = rank
        self._phase_submission(rank)
        self.output = rank

    # -- Phase 1 -----------------------------------------------------------------
    def _phase_gain_computation(self):
        """Steps 2 and 4: dot product with P_0, recover masked gain β."""
        self.set_phase(PHASE_GAIN)
        config = self.config
        dot = config.dot_protocol()
        extended = participant_extended_vector(config.schema, self.secret_input)
        request, state = dot.bob_request(extended, self.rng)
        self.send(
            INITIATOR_ID, TAG_DP_REQUEST, request,
            size_bits=dot.message_bits(len(extended))[0],
        )
        message = yield from self.recv(INITIATOR_ID, TAG_DP_RESPONSE)
        if not dot.validate_response(message.payload):
            raise ProtocolAbort(
                "the initiator sent a malformed dot-product response",
                blamed=INITIATOR_ID, phase=PHASE_GAIN,
            )
        beta_signed = dot.bob_recover(state, message.payload)
        return to_unsigned(beta_signed, config.beta_bits)

    # -- Phase 2 -----------------------------------------------------------------
    def _phase_unlinkable_comparison(self, beta: int):
        config = self.config
        group = config.group
        others = self._others

        # Step 5: distributed keying with knowledge proofs.
        self.set_phase(PHASE_KEYING)
        distkey = DistributedKey(group)
        share = distkey.make_share(self.party_id, self.rng)
        self._key_share = share
        distkey.register_public(self.party_id, share.public)
        publics = yield from self._run_keying_zkps(distkey, share)

        joint_key = distkey.joint_public_key()

        # Offline phase: pre-generate randomness under the joint key so the
        # online bit encryptions cost table lookups and multiplications.
        pool: Optional[RandomnessPool] = None
        if config.precompute > 0:
            pool = RandomnessPool(
                group, joint_key, self.rng, size=config.precompute
            )
        self._pool = pool

        # Step 6: publish bitwise encryption of β under the joint key.
        self.set_phase(PHASE_COMPARISON)
        bitwise = BitwiseElGamal(group, pool=pool, multiexp=config.multiexp)
        beta_bits_size = bitwise.ciphertext_bits(config.beta_bits)
        if config.bit_proofs:
            # Each broadcast carries per-bit validity proofs; receivers
            # check them (in one batch when batch_verify is on) before
            # the circuit touches the operand.
            my_bits_ct, my_proofs = self._published_beta_bits_with_proofs(
                bitwise, beta, joint_key
            )
            self.broadcast(
                others, TAG_BETA_BITS, (my_bits_ct, my_proofs),
                size_bits=beta_bits_size + bitwise.proof_bits(config.beta_bits),
            )
            received = yield from self.recv_from_all(others, TAG_BETA_BITS)
            other_bits = {}
            claims = []
            for src in sorted(received):
                payload = received[src]
                if not (isinstance(payload, tuple) and len(payload) == 2):
                    raise ProtocolAbort(
                        f"P{src} sent a malformed bitwise ciphertext",
                        blamed=src, phase=PHASE_COMPARISON,
                    )
                their_bits, their_proofs = payload
                bitwise.validate_or_abort(their_bits, config.beta_bits, blamed=src)
                other_bits[src] = their_bits
                claims.append((src, their_bits, their_proofs))
            verify_bit_proofs_or_abort(
                group, joint_key, claims, batch=config.batch_verify
            )
        else:
            my_bits_ct = self._published_beta_bits(bitwise, beta, joint_key)
            self.broadcast(
                others, TAG_BETA_BITS, my_bits_ct, size_bits=beta_bits_size
            )
            other_bits = yield from self.recv_from_all(others, TAG_BETA_BITS)
            for src, received in other_bits.items():
                bitwise.validate_or_abort(received, config.beta_bits, blamed=src)

        # Step 7: homomorphic comparisons; flatten into this party's set ℰ_j.
        # One comparison per peer, each RNG-free — the parallel engine fans
        # them out as independent jobs and merges the workers' counters.
        my_set: List[Ciphertext] = []
        worker_pool = self._worker_pool()
        if worker_pool is not None and worker_pool.parallel:
            from repro.runtime.parallel import TauJob, evaluate_tau_job

            jobs = [
                TauJob(
                    group=group,
                    beta=beta,
                    other_bits=tuple(other_bits[i].bits),
                    naive_suffix=config.naive_suffix,
                    multiexp=config.multiexp,
                )
                for i in sorted(other_bits)
            ]
            for taus, ops in worker_pool.map(evaluate_tau_job, jobs):
                my_set.extend(taus)
                self.metrics.ops.merge(ops)
        else:
            comparator = HomomorphicComparator(
                group,
                naive_suffix=config.naive_suffix,
                multiexp=config.multiexp,
                pool=pool,
            )
            for i in sorted(other_bits):
                my_set.extend(comparator.encrypted_taus(beta, other_bits[i]))

        # Step 8: the chain over the active set, in position order.
        self.set_phase(PHASE_CHAIN)
        rank_zeros = yield from self._run_shuffle_chain(my_set, share.secret)
        return rank_zeros + 1

    def _worker_pool(self):
        """The engine-owned process pool, when one is configured."""
        return getattr(self._engine, "worker_pool", None)

    def _run_keying_zkps(self, distkey: DistributedKey, share):
        """Broadcast own key share + Schnorr proof; verify everyone else's.

        Verifiers are all other parties including the initiator (the
        paper's "rest of parties").
        """
        config = self.config
        group = config.group
        others = self._others
        verifiers = [INITIATOR_ID] + others
        element_bits = group.element_bits
        order_bits = group.order.bit_length()

        def require_element(candidate, blamed):
            if not group.is_element(candidate):
                raise ProtocolAbort(
                    f"P{blamed} published an invalid public key share",
                    blamed=blamed, phase=PHASE_KEYING,
                )

        publics: Dict[int, Element] = {}
        if not config.verify_zkp:
            # Keying without proofs (testing/ablation): exchange shares only.
            self.broadcast(others, TAG_PK_SHARE, share.public, size_bits=element_bits)
            for j in others:
                share_msg = yield from self.recv(j, TAG_PK_SHARE)
                require_element(share_msg.payload, j)
                publics[j] = share_msg.payload
                distkey.register_public(j, share_msg.payload)
            return publics

        if config.zkp_mode == "fiat-shamir":
            # NIZK keying (extension): one broadcast carries share + proof,
            # no challenge round-trips — compare rounds in the ablations.
            nizk = NonInteractiveSchnorrProof(
                group, context=b"repro-keying|" + str(self.party_id).encode()
            )
            proof = nizk.prove(self._proof_secret(share.secret), self.rng)
            self.broadcast(
                verifiers, TAG_ZKP_NIZK, (share.public, proof),
                size_bits=2 * element_bits + order_bits,
            )
            proof_batch = ShareProofBatch(
                group, distkey, batch=config.batch_verify, phase=PHASE_KEYING
            )
            for j in others:
                message = yield from self.recv(j, TAG_ZKP_NIZK)
                their_public, their_proof = message.payload
                require_element(their_public, j)
                peer_nizk = NonInteractiveSchnorrProof(
                    group, context=b"repro-keying|" + str(j).encode()
                )
                proof_batch.add_nizk_claim(j, their_public, their_proof, peer_nizk)
            return proof_batch.verify_and_register()

        commitment, nonce = self._zkp.commit(self.rng)
        self.broadcast(verifiers, TAG_PK_SHARE, share.public, size_bits=element_bits)
        self.broadcast(verifiers, TAG_ZKP_COMMIT, commitment, size_bits=element_bits)

        commits: Dict[int, Element] = {}
        for j in others:
            share_msg = yield from self.recv(j, TAG_PK_SHARE)
            require_element(share_msg.payload, j)
            publics[j] = share_msg.payload
            distkey.register_public(j, share_msg.payload)
            commit_msg = yield from self.recv(j, TAG_ZKP_COMMIT)
            commits[j] = commit_msg.payload
            self.send(j, TAG_ZKP_CHALLENGE, self._zkp.challenge(self.rng),
                      size_bits=order_bits)

        challenges = []
        for verifier in verifiers:
            challenge_msg = yield from self.recv(verifier, TAG_ZKP_CHALLENGE)
            challenges.append(challenge_msg.payload)
        response = self._zkp.respond_multi(
            nonce, self._proof_secret(share.secret), challenges
        )
        self.broadcast(
            verifiers, TAG_ZKP_RESPONSE,
            (commitment, tuple(challenges), response),
            size_bits=(len(challenges) + 1) * order_bits + config.group.element_bits,
        )

        proof_batch = ShareProofBatch(
            group, batch=config.batch_verify, phase=PHASE_KEYING
        )
        for j in others:
            response_msg = yield from self.recv(j, TAG_ZKP_RESPONSE)
            their_commit, their_challenges, z = response_msg.payload
            if not group.eq(their_commit, commits[j]):
                raise ProtocolAbort(
                    f"P{j} answered a different commitment",
                    blamed=j, phase=PHASE_KEYING,
                )
            proof_batch.add_transcript_claim(
                j, publics[j], their_commit, their_challenges, z
            )
        proof_batch.verify_and_register()
        return publics

    # -- Step 8: chain validation helpers ---------------------------------------
    def _expected_set_size(self) -> int:
        # Every ℰ_j must hold exactly l·(n_active−1) ciphertexts; anyone
        # in the chain can (and does) check, so a member dropping or
        # injecting ciphertexts is caught at the next hop.
        return self.config.beta_bits * (len(self.active_ids) - 1)

    def _validate_set(self, cipher_set, blamed: int) -> None:
        """Size + group-membership check on one comparison set."""
        flaw = chain_set_flaw(
            self.config.group,
            cipher_set,
            self._expected_set_size(),
            check_membership=self.config.validate_elements,
        )
        if flaw is not None:
            raise ProtocolAbort(
                f"chain vector tampered: {flaw}",
                blamed=blamed, phase=PHASE_CHAIN,
            )

    def _validate_vector(self, sets, blamed: int) -> None:
        if not isinstance(sets, (list, tuple)) or len(sets) != len(self.active_ids):
            raise ProtocolAbort(
                "chain vector tampered: wrong number of comparison sets",
                blamed=blamed, phase=PHASE_CHAIN,
            )
        for cipher_set in sets:
            self._validate_set(cipher_set, blamed)

    def _run_shuffle_chain(self, my_set: List[Ciphertext], secret: int):
        """Step 8 plus the first half of step 9 (count own zeros).

        Chain order is positional in the active set: the first active
        participant gathers the ℰ sets, the last distributes the final
        vector — so the same code runs a full group or a survivor
        subset.
        """
        config = self.config
        active = self.active_ids
        position = self._position
        others = self._others
        processor = ShuffleProcessor(
            config.group, rerandomize=config.rerandomize, permute=config.permute
        )
        executor = self._worker_pool()
        set_bits = len(my_set) * config.ciphertext_bits()
        vector_bits = len(active) * set_bits
        head, tail = active[0], active[-1]
        if len(my_set) != self._expected_set_size():
            raise ProtocolError("own comparison set has the wrong size")

        if config.streaming:
            zeros = yield from self._stream_shuffle_chain(
                my_set, secret, processor, executor, set_bits
            )
            return zeros

        if position == 0:
            # The chain head gathers every ℰ_j, builds V, processes, forwards.
            received = yield from self.recv_from_all(others, TAG_TAU_SETS)
            vector: List[List[Ciphertext]] = [my_set]
            for j in sorted(received):
                self._validate_set(received[j], blamed=j)
                vector.append(list(received[j]))
            vector = processor.process_vector(
                vector, own_index=0, secret=secret, rng=self.rng, executor=executor
            )
            self.send(active[1], TAG_CHAIN, vector, size_bits=vector_bits)
            final_msg = yield from self.recv(tail, TAG_FINAL_SET)
            final_set = final_msg.payload
        else:
            self.send(head, TAG_TAU_SETS, self._outgoing_tau_set(my_set),
                      size_bits=set_bits)
            predecessor = active[position - 1]
            chain_msg = yield from self.recv(predecessor, TAG_CHAIN)
            self._validate_vector(chain_msg.payload, blamed=predecessor)
            vector = processor.process_vector(
                chain_msg.payload, own_index=position, secret=secret, rng=self.rng,
                executor=executor,
            )
            if position < len(active) - 1:
                self.send(active[position + 1], TAG_CHAIN, vector,
                          size_bits=vector_bits)
                final_msg = yield from self.recv(tail, TAG_FINAL_SET)
                final_set = final_msg.payload
            else:
                # The chain tail distributes the processed sets to their owners.
                for j in others:
                    self.send(j, TAG_FINAL_SET, vector[active.index(j)],
                              size_bits=set_bits)
                final_set = vector[position]

        if self.party_id != tail:
            self._validate_set(final_set, blamed=tail)
        zeros, residues = processor.decrypt_residues(final_set, secret)
        self.final_residues = residues
        return zeros

    # -- Step 8, streaming variant ------------------------------------------------
    def _stream_chunks(self, total_sets: int) -> List[Tuple[int, int]]:
        """Consecutive ``[start, stop)`` bounds covering the vector, each
        at most ``stream_chunk_sets`` comparison sets wide.  Every party
        derives the same layout from public parameters."""
        size = self.config.stream_chunk_sets
        return [
            (start, min(start + size, total_sets))
            for start in range(0, total_sets, size)
        ]

    def _validated_chunk(self, payload, expected_index: int, expected_sets: int,
                         blamed: int) -> List[List[Ciphertext]]:
        """Structure + per-set validation of one streamed chain chunk."""
        if not (isinstance(payload, tuple) and len(payload) == 2):
            raise ProtocolAbort(
                "chain vector tampered: malformed stream chunk",
                blamed=blamed, phase=PHASE_CHAIN,
            )
        index, sets = payload
        if (
            index != expected_index
            or not isinstance(sets, (list, tuple))
            or len(sets) != expected_sets
        ):
            raise ProtocolAbort(
                "chain vector tampered: stream chunk out of sequence",
                blamed=blamed, phase=PHASE_CHAIN,
            )
        for cipher_set in sets:
            self._validate_set(cipher_set, blamed)
        return [list(cipher_set) for cipher_set in sets]

    def _stream_shuffle_chain(self, my_set: List[Ciphertext], secret: int,
                              processor: ShuffleProcessor, executor, set_bits: int):
        """Step 8 as a pipeline: the vector travels in chunks.

        The head pauses one engine round between chunk emissions (see
        :class:`~repro.runtime.channels.NextRound`), so its successor is
        already peeling chunk ``c`` while the head emits ``c+1`` — the
        chain's wall-clock becomes ``rounds(n + chunks)`` of *chunk-sized*
        work instead of ``rounds(n)`` of whole-vector work.  Set-level
        randomness is drawn in the exact order the serial walk uses, so
        every ciphertext, every final set, and every rank is identical
        to the unstreamed run.
        """
        active = self.active_ids
        position = self._position
        others = self._others
        head, tail = active[0], active[-1]
        bounds = self._stream_chunks(len(active))
        header_bits = 32

        if position == 0:
            received = yield from self.recv_from_all(others, TAG_TAU_SETS)
            vector: List[List[Ciphertext]] = [my_set]
            for j in sorted(received):
                self._validate_set(received[j], blamed=j)
                vector.append(list(received[j]))
            successor = active[1]
            for c, (start, stop) in enumerate(bounds):
                own_local = position - start if start <= position < stop else -1
                processed = processor.process_vector(
                    vector[start:stop], own_index=own_local, secret=secret,
                    rng=self.rng, executor=executor,
                )
                self.send(
                    successor, TAG_CHAIN, (c, processed),
                    size_bits=len(processed) * set_bits + header_bits,
                )
                if c + 1 < len(bounds):
                    yield from self.pause()
            final_msg = yield from self.recv(tail, TAG_FINAL_SET)
            final_set = final_msg.payload
        else:
            self.send(head, TAG_TAU_SETS, self._outgoing_tau_set(my_set),
                      size_bits=set_bits)
            predecessor = active[position - 1]
            collected: List[List[Ciphertext]] = []
            for c, (start, stop) in enumerate(bounds):
                chain_msg = yield from self.recv(predecessor, TAG_CHAIN)
                chunk = self._validated_chunk(
                    chain_msg.payload, c, stop - start, blamed=predecessor
                )
                own_local = position - start if start <= position < stop else -1
                processed = processor.process_vector(
                    chunk, own_index=own_local, secret=secret, rng=self.rng,
                    executor=executor,
                )
                if position < len(active) - 1:
                    self.send(
                        active[position + 1], TAG_CHAIN, (c, processed),
                        size_bits=len(processed) * set_bits + header_bits,
                    )
                else:
                    collected.extend(processed)
            if position == len(active) - 1:
                for j in others:
                    self.send(j, TAG_FINAL_SET, collected[active.index(j)],
                              size_bits=set_bits)
                final_set = collected[position]
            else:
                final_msg = yield from self.recv(tail, TAG_FINAL_SET)
                final_set = final_msg.payload

        if self.party_id != tail:
            self._validate_set(final_set, blamed=tail)
        zeros, residues = processor.decrypt_residues(final_set, secret)
        self.final_residues = residues
        return zeros

    # -- Phase 3 -----------------------------------------------------------------
    def _phase_submission(self, rank: int) -> None:
        """Step 9, second half: submit information iff ranked in the top k.

        Non-selected participants send an explicit (empty) decline so the
        simulated initiator can terminate deterministically; on a real
        network P_0 would simply stop waiting.
        """
        self.set_phase(PHASE_SUBMISSION)
        config = self.config
        rank = self._claimed_rank(rank)
        if rank <= config.k and config.collect_submissions:
            payload = Submission(rank=rank, values=self.secret_input.values)
            size = config.schema.dimension * config.schema.value_bits + 32
        else:
            payload = None
            size = 1
        self.send(INITIATOR_ID, TAG_SUBMISSION, payload, size_bits=size)
