"""Gain model (paper Section III-A, Definitions 1-2).

The initiator scores each participant by a *gain* combining
"greater than" attributes (reward exceeding the criterion) and
"equal to" attributes (penalize squared distance from the criterion):

    g_j = Σ_{k>t} w_k (v_k^j − v_k^0)  −  Σ_{k≤t} w_k (v_k^j − v_k^0)²

Ranking only needs the *partial gain*

    p_j = Σ_{k>t} w_k v_k^j − Σ_{k≤t} (w_k (v_k^j)² − 2 w_k v_k^j v_k^0)

which differs from ``g_j`` by a participant-independent constant and
hides part of the criterion.  The framework never computes ``p_j`` in
the clear: the dot-product protocol yields the masked value
``β_j = ρ·p_j + ρ_j``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class AttributeSchema:
    """The questionnaire: ``m`` named attributes, the first ``t`` "equal to".

    ``value_bits`` (paper ``d1``) bounds attribute values;
    ``weight_bits`` (paper ``d2``) bounds the initiator's weights.
    """

    names: Tuple[str, ...]
    num_equal: int
    value_bits: int
    weight_bits: int

    def __post_init__(self):
        if not self.names:
            raise ValueError("schema needs at least one attribute")
        if not 0 <= self.num_equal <= len(self.names):
            raise ValueError("num_equal out of range")
        if self.value_bits < 1 or self.weight_bits < 1:
            raise ValueError("bit widths must be positive")

    @property
    def dimension(self) -> int:
        return len(self.names)

    @property
    def extended_dimension(self) -> int:
        """Dimension of the dot-product vectors: ``(m - t) + t + t``."""
        return self.dimension + self.num_equal

    def check_values(self, values: Sequence[int], label: str) -> None:
        if len(values) != self.dimension:
            raise ValueError(f"{label} has {len(values)} entries, schema wants {self.dimension}")
        bound = 1 << self.value_bits
        for name, value in zip(self.names, values):
            if not 0 <= value < bound:
                # Attribute values are party-private; name the slot, not the value.
                raise ValueError(
                    f"{label}[{name}] outside [0, 2^{self.value_bits})"
                )

    def check_weights(self, weights: Sequence[int]) -> None:
        if len(weights) != self.dimension:
            raise ValueError("weight vector dimension mismatch")
        bound = 1 << self.weight_bits
        for name, weight in zip(self.names, weights):
            if not 0 <= weight < bound:
                raise ValueError(
                    f"weight[{name}] outside [0, 2^{self.weight_bits})"
                )


@dataclass(frozen=True)
class InitiatorInput:
    """The initiator's private criterion vector ``v0`` and weights ``w``."""

    criterion: Tuple[int, ...]
    weights: Tuple[int, ...]

    @classmethod
    def create(
        cls, schema: AttributeSchema, criterion: Sequence[int], weights: Sequence[int]
    ) -> "InitiatorInput":
        schema.check_values(criterion, "criterion")
        schema.check_weights(weights)
        return cls(criterion=tuple(criterion), weights=tuple(weights))


@dataclass(frozen=True)
class ParticipantInput:
    """One participant's private information vector ``v_j``."""

    values: Tuple[int, ...]

    @classmethod
    def create(cls, schema: AttributeSchema, values: Sequence[int]) -> "ParticipantInput":
        schema.check_values(values, "information vector")
        return cls(values=tuple(values))


# ---------------------------------------------------------------------------
# Reference (in-the-clear) gain computations — used by tests, by the
# initiator's final verification, and nowhere else.
# ---------------------------------------------------------------------------

def gain(
    schema: AttributeSchema, initiator: InitiatorInput, participant: ParticipantInput
) -> int:
    """Definition 1, computed in the clear."""
    t = schema.num_equal
    v0, w, vj = initiator.criterion, initiator.weights, participant.values
    greater = sum(w[k] * (vj[k] - v0[k]) for k in range(t, schema.dimension))
    equal = sum(w[k] * (vj[k] - v0[k]) ** 2 for k in range(t))
    return greater - equal


def partial_gain(
    schema: AttributeSchema, initiator: InitiatorInput, participant: ParticipantInput
) -> int:
    """The ranking-sufficient partial gain ``p_j`` (Section III-A)."""
    t = schema.num_equal
    v0, w, vj = initiator.criterion, initiator.weights, participant.values
    greater = sum(w[k] * vj[k] for k in range(t, schema.dimension))
    equal = sum(w[k] * vj[k] ** 2 - 2 * w[k] * vj[k] * v0[k] for k in range(t))
    return greater - equal


def gain_offset(schema: AttributeSchema, initiator: InitiatorInput) -> int:
    """The participant-independent constant with ``g_j = p_j - offset``."""
    t = schema.num_equal
    v0, w = initiator.criterion, initiator.weights
    return sum(w[k] * v0[k] for k in range(t, schema.dimension)) + sum(
        w[k] * v0[k] ** 2 for k in range(t)
    )


# ---------------------------------------------------------------------------
# Dot-product embeddings (Section V, steps 2-3)
# ---------------------------------------------------------------------------

def participant_extended_vector(
    schema: AttributeSchema, participant: ParticipantInput
) -> List[int]:
    """``w'_j = [vg_j, ve_j * ve_j, ve_j]`` (the protocol appends the 1)."""
    t = schema.num_equal
    vj = participant.values
    ve = list(vj[:t])
    vg = list(vj[t:])
    return vg + [value * value for value in ve] + ve


def initiator_extended_vector(
    schema: AttributeSchema, initiator: InitiatorInput, rho: int
) -> List[int]:
    """``v'_j = [ρ·wg, −ρ·we, 2ρ·(we * ve0)]`` (``ρ_j`` rides as α)."""
    t = schema.num_equal
    v0, w = initiator.criterion, initiator.weights
    we = list(w[:t])
    wg = list(w[t:])
    ve0 = list(v0[:t])
    return (
        [rho * weight for weight in wg]
        + [-rho * weight for weight in we]
        + [2 * rho * weight * value for weight, value in zip(we, ve0)]
    )


# ---------------------------------------------------------------------------
# β bit-lengths and the signed/unsigned conversion (Section III-A)
# ---------------------------------------------------------------------------

def beta_bit_length(
    m: int, d1: int, d2: int, h: int, mode: str = "safe"
) -> int:
    """Bit length ``l`` of the masked gain ``β = ρ·p + ρ_j`` (sign included).

    ``mode="paper"`` reproduces the paper's stated
    ``l = h + ⌈log m⌉ + d1 + 2·d2 + 2``.  ``mode="safe"`` (default) uses
    the rigorous bound ``l = h + ⌈log m⌉ + 2·d1 + d2 + 3`` — the paper's
    expression undercounts the ``w·v²`` term, which carries *two* factors
    of a ``d1``-bit value and one ``d2``-bit weight (see EXPERIMENTS.md).
    Both are linear in every parameter, so all evaluation trends match.
    """
    if m < 1:
        raise ValueError("m must be positive")
    log_m = max(1, math.ceil(math.log2(m))) if m > 1 else 1
    if mode == "paper":
        return h + log_m + d1 + 2 * d2 + 2
    if mode == "safe":
        return h + log_m + 2 * d1 + d2 + 3
    raise ValueError("mode must be 'paper' or 'safe'")


def to_unsigned(value: int, width: int) -> int:
    """Order-preserving map of an ``l``-bit signed value to unsigned:
    add ``2^(l-1)``."""
    shifted = value + (1 << (width - 1))
    if not 0 <= shifted < (1 << width):
        # The offending value is often a secret-masked gain; never echo it.
        raise ValueError(f"value out of signed {width}-bit range")
    return shifted


def to_signed(value: int, width: int) -> int:
    """Inverse of :func:`to_unsigned`."""
    if not 0 <= value < (1 << width):
        raise ValueError(f"value out of unsigned {width}-bit range")
    return value - (1 << (width - 1))
