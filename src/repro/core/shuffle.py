"""The unlinkable decrypt–rerandomize–shuffle chain (framework step 8).

Each participant, when the ciphertext vector ``V = [ℰ_1 … ℰ_n]`` passes
through her hands, applies to every set ``ℰ_i`` she does not own:

1. **peel** her ElGamal layer: ``c → c / c'^{x_j}``;
2. **rerandomize by exponent**: ``(c, c') → (c^r, c'^r)`` with fresh
   ``r ≠ 0`` per ciphertext — this maps plaintext ``M`` to ``r·M``,
   preserving exactly the ``M = 0`` predicate the ranking needs while
   destroying the non-zero τ values;
3. **permute** the ciphertexts within the set, so the position of a
   zero no longer betrays which bit position (and hence how the
   compared gains relate) produced it.

This is the Brickell–Shmatikov anonymous-messaging idea recast as a
sorting step; it is what buys *identity unlinkability* (paper Lemma 4).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.distkey import DistributedKey
from repro.crypto.elgamal import Ciphertext
from repro.groups.base import Group
from repro.math.rng import RNG

CiphertextSet = List[Ciphertext]


class ShuffleProcessor:
    """One participant's step-8 processing, with ablation switches.

    ``rerandomize=False`` and ``permute=False`` exist solely for the
    security-ablation experiments showing the attacks they prevent.
    """

    def __init__(self, group: Group, rerandomize: bool = True, permute: bool = True):
        self.group = group
        self._distkey = DistributedKey(group)
        self.rerandomize = rerandomize
        self.permute = permute

    def process_set(
        self, ciphertexts: Sequence[Ciphertext], secret: int, rng: RNG
    ) -> CiphertextSet:
        """Apply peel + rerandomize + permute to one set ``ℰ_i``."""
        processed: CiphertextSet = []
        for ciphertext in ciphertexts:
            peeled = self._distkey.peel_layer(ciphertext, secret)
            if self.rerandomize:
                peeled = self._distkey.rerandomize_exponent(peeled, rng)
            processed.append(peeled)
        if self.permute:
            rng.shuffle(processed)
        return processed

    def process_vector(
        self,
        vector: List[CiphertextSet],
        own_index: int,
        secret: int,
        rng: RNG,
    ) -> List[CiphertextSet]:
        """Process every set except the party's own (paper: ``ℰ_i, i ≠ j``)."""
        result: List[CiphertextSet] = []
        for index, ciphertext_set in enumerate(vector):
            if index == own_index:
                result.append(list(ciphertext_set))
            else:
                result.append(self.process_set(ciphertext_set, secret, rng))
        return result

    def count_zero_plaintexts(
        self, ciphertexts: Sequence[Ciphertext], secret: int
    ) -> int:
        """Final step: peel the last (own) layer and count ``g^M = 1``."""
        zeros, _ = self.decrypt_residues(ciphertexts, secret)
        return zeros

    def decrypt_residues(
        self, ciphertexts: Sequence[Ciphertext], secret: int
    ):
        """Peel the last layer; return ``(zero count, residues g^M)``.

        The residues are exactly what the set's owner sees — the
        security-game harness hands an *adversarial* owner's residues to
        the attack code, never an honest party's.
        """
        residues = []
        zeros = 0
        for ciphertext in ciphertexts:
            residue = self._distkey.peel_layer(ciphertext, secret)
            residues.append(residue.c1)
            if self.group.is_identity(residue.c1):
                zeros += 1
        return zeros, residues
