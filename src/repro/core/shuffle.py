"""The unlinkable decrypt–rerandomize–shuffle chain (framework step 8).

Each participant, when the ciphertext vector ``V = [ℰ_1 … ℰ_n]`` passes
through her hands, applies to every set ``ℰ_i`` she does not own:

1. **peel** her ElGamal layer: ``c → c / c'^{x_j}``;
2. **rerandomize by exponent**: ``(c, c') → (c^r, c'^r)`` with fresh
   ``r ≠ 0`` per ciphertext — this maps plaintext ``M`` to ``r·M``,
   preserving exactly the ``M = 0`` predicate the ranking needs while
   destroying the non-zero τ values;
3. **permute** the ciphertexts within the set, so the position of a
   zero no longer betrays which bit position (and hence how the
   compared gains relate) produced it.

This is the Brickell–Shmatikov anonymous-messaging idea recast as a
sorting step; it is what buys *identity unlinkability* (paper Lemma 4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.crypto.distkey import DistributedKey
from repro.crypto.elgamal import Ciphertext
from repro.groups.base import Group
from repro.math.rng import RNG

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.parallel import WorkerPool

CiphertextSet = List[Ciphertext]

SetRandomness = Tuple[Optional[Tuple[int, ...]], Optional[Tuple[int, ...]]]


class ShuffleProcessor:
    """One participant's step-8 processing, with ablation switches.

    ``rerandomize=False`` and ``permute=False`` exist solely for the
    security-ablation experiments showing the attacks they prevent.
    """

    def __init__(self, group: Group, rerandomize: bool = True, permute: bool = True):
        self.group = group
        self._distkey = DistributedKey(group)
        self.rerandomize = rerandomize
        self.permute = permute

    def process_set(
        self, ciphertexts: Sequence[Ciphertext], secret: int, rng: RNG
    ) -> CiphertextSet:
        """Apply peel + rerandomize + permute to one set ``ℰ_i``."""
        rerandomizers, permutation = self.draw_set_randomness(len(ciphertexts), rng)
        return self.apply_set(ciphertexts, secret, rerandomizers, permutation)

    def draw_set_randomness(self, count: int, rng: RNG) -> SetRandomness:
        """Draw one set's randomness in the exact serial order.

        Returns ``(rerandomizers, permutation)`` (each ``None`` when the
        corresponding ablation switch is off).  ``rng.permutation``
        consumes the source identically to the in-place ``rng.shuffle``
        the serial path historically used, so pre-drawing here and
        applying deterministically — possibly in a worker process —
        yields byte-identical transcripts.
        """
        rerandomizers: Optional[Tuple[int, ...]] = None
        if self.rerandomize:
            rerandomizers = tuple(
                self.group.random_nonzero_exponent(rng) for _ in range(count)
            )
        permutation: Optional[Tuple[int, ...]] = None
        if self.permute:
            permutation = tuple(rng.permutation(count))
        return rerandomizers, permutation

    def apply_set(
        self,
        ciphertexts: Sequence[Ciphertext],
        secret: int,
        rerandomizers: Optional[Sequence[int]],
        permutation: Optional[Sequence[int]],
    ) -> CiphertextSet:
        """RNG-free half of :meth:`process_set`: peel + rerandomize with
        the pre-drawn exponents + apply the pre-drawn permutation."""
        processed: CiphertextSet = []
        for index, ciphertext in enumerate(ciphertexts):
            # repro-lint: ignore[R-GUARD] -- hot chain path; every incoming
            # set was membership-checked at receipt via chain_set_flaw
            # (repro.core.parties._validate_set) before reaching here
            peeled = self._distkey.peel_layer(ciphertext, secret)
            if rerandomizers is not None:
                # repro-lint: ignore[R-GUARD] -- operates on the just-peeled
                # ciphertext, validated at receipt as above
                peeled = self._distkey.rerandomize_with_exponent(
                    peeled, rerandomizers[index]
                )
            processed.append(peeled)
        if permutation is not None:
            processed = [processed[source] for source in permutation]
        return processed

    def process_vector(
        self,
        vector: List[CiphertextSet],
        own_index: int,
        secret: int,
        rng: RNG,
        executor: Optional["WorkerPool"] = None,
    ) -> List[CiphertextSet]:
        """Process every set except the party's own (paper: ``ℰ_i, i ≠ j``).

        With a parallel ``executor``, randomness for every foreign set is
        pre-drawn in vector order (matching the serial draw sequence
        exactly) and the RNG-free application fans out across workers;
        per-job operation counters are merged back into this group's
        attached counter so metrics match the serial run.
        """
        if executor is not None and executor.parallel:
            return self._process_vector_parallel(
                vector, own_index, secret, rng, executor
            )
        result: List[CiphertextSet] = []
        for index, ciphertext_set in enumerate(vector):
            if index == own_index:
                result.append(list(ciphertext_set))
            else:
                result.append(self.process_set(ciphertext_set, secret, rng))
        return result

    def _process_vector_parallel(
        self,
        vector: List[CiphertextSet],
        own_index: int,
        secret: int,
        rng: RNG,
        executor: "WorkerPool",
    ) -> List[CiphertextSet]:
        from repro.runtime.parallel import ShuffleJob, evaluate_shuffle_job

        jobs: List[ShuffleJob] = []
        foreign_indices: List[int] = []
        for index, ciphertext_set in enumerate(vector):
            if index == own_index:
                continue
            rerandomizers, permutation = self.draw_set_randomness(
                len(ciphertext_set), rng
            )
            jobs.append(
                ShuffleJob(
                    group=self.group,
                    ciphertexts=tuple(ciphertext_set),
                    secret=secret,
                    rerandomizers=rerandomizers,
                    permutation=permutation,
                )
            )
            foreign_indices.append(index)
        outcomes = executor.map(evaluate_shuffle_job, jobs)
        result: List[CiphertextSet] = [list(s) for s in vector]
        for index, (processed, counter) in zip(foreign_indices, outcomes):
            result[index] = processed
            self.group.counter.merge(counter)
        return result

    def count_zero_plaintexts(
        self, ciphertexts: Sequence[Ciphertext], secret: int
    ) -> int:
        """Final step: peel the last (own) layer and count ``g^M = 1``."""
        zeros, _ = self.decrypt_residues(ciphertexts, secret)
        return zeros

    def decrypt_residues(
        self, ciphertexts: Sequence[Ciphertext], secret: int
    ):
        """Peel the last layer; return ``(zero count, residues g^M)``.

        The residues are exactly what the set's owner sees — the
        security-game harness hands an *adversarial* owner's residues to
        the attack code, never an honest party's.
        """
        residues = []
        zeros = 0
        for ciphertext in ciphertexts:
            # repro-lint: ignore[R-GUARD] -- final own-set peel; the set was
            # membership-checked at receipt via chain_set_flaw
            residue = self._distkey.peel_layer(ciphertext, secret)
            residues.append(residue.c1)
            if self.group.is_identity(residue.c1):
                zeros += 1
        return zeros, residues


def chain_set_flaw(
    group: Group,
    cipher_set: object,
    expected_size: int,
    *,
    check_membership: bool = True,
) -> Optional[str]:
    """Why ``cipher_set`` cannot be a step-8 comparison set, or ``None``.

    The mechanism-level half of chain validation: geometry (a sequence of
    exactly ``expected_size`` ciphertexts) and, unless disabled,
    group membership of every component.  Membership uses the unmetered
    ``is_element`` predicate so validating does not disturb the paper's
    operation accounting.  The protocol layer (``repro.core.parties``)
    turns a non-``None`` answer into a blamed ``ProtocolAbort``.
    """
    if not isinstance(cipher_set, (list, tuple)) or len(cipher_set) != expected_size:
        return "a comparison set has the wrong size"
    if not check_membership:
        return None
    for ciphertext in cipher_set:
        if not (
            isinstance(ciphertext, Ciphertext)
            and group.is_element(ciphertext.c1)
            and group.is_element(ciphertext.c2)
        ):
            return "a ciphertext is not a pair of group elements"
    return None
