"""The homomorphic bit-comparison circuit (framework step 7).

Given P_j's *plaintext* bits of ``β_j`` and P_i's *encrypted* bits of
``β_i``, P_j computes, for every bit position ``t`` (1-indexed from the
least significant bit, as in the paper):

    γ^t = β_j^t ⊕ β_i^t
    ω^t = (l − t + 1) − Σ_{v=t+1}^{l} (γ^t − γ^v) − γ^t
    τ^t = ω^t + β_j^t

Key property (proved in ``tests/test_core_comparison.py`` exhaustively
and by hypothesis): among ``τ^1 .. τ^l`` there is **exactly one zero iff
β_j < β_i, and no zero otherwise**.  Intuition: let ``t*`` be the most
significant differing bit.  At ``t = t*`` the bracket ``(l−t+1)·(1−γ^t)
+ Σ_{v>t} γ^v`` vanishes, leaving ``τ = β_j^{t*}``, which is 0 exactly
when ``β_j`` loses; at every other position something positive remains.

All of this is affine in the encrypted bits, so it runs under
exponential ElGamal: XOR with a known bit is negation-or-identity, and
the suffix sums are ciphertext additions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.crypto.bitenc import BitProof, BitValidityProof, BitwiseCiphertext
from repro.crypto.elgamal import Ciphertext, ExponentialElGamal
from repro.groups.base import Element, Group
from repro.math.modular import int_to_bits
from repro.runtime.errors import ProtocolAbort, ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.crypto.precompute import RandomnessPool


def tau_values_plain(beta_j: int, beta_i: int, width: int) -> List[int]:
    """Reference plaintext evaluation of the circuit (little-endian list:
    entry ``t-1`` is the paper's ``τ^t``)."""
    bits_j = int_to_bits(beta_j, width)
    bits_i = int_to_bits(beta_i, width)
    gammas = [bj ^ bi for bj, bi in zip(bits_j, bits_i)]
    taus = []
    for t in range(1, width + 1):
        suffix = sum(gammas[v - 1] for v in range(t + 1, width + 1))
        omega = (width - t + 1) - ((width - t + 1) * gammas[t - 1] - suffix)
        taus.append(omega + bits_j[t - 1])
    return taus


def compare_bits_plain(beta_j: int, beta_i: int, width: int) -> bool:
    """True iff the circuit reports ``β_j < β_i`` (i.e. a zero τ exists)."""
    return 0 in tau_values_plain(beta_j, beta_i, width)


def verify_bit_proofs_or_abort(
    group: Group,
    public_key: Element,
    claims: Sequence[Tuple[int, BitwiseCiphertext, Sequence[BitProof]]],
    *,
    batch: bool = False,
    phase: str = "comparison",
) -> None:
    """Check every sender's per-bit validity proofs before the circuit
    touches their operand.

    ``claims`` holds ``(sender, bitwise ciphertext, per-bit proofs)`` for
    every peer.  With ``batch=True`` all senders' proof equations fold
    into ONE random-linear-combination multi-exponentiation (the hash
    bindings stay per-proof — they cost a hash, not an exponentiation);
    on batch failure, or with ``batch=False``, proofs are re-checked one
    by one so the abort blames the exact sender, just as the unbatched
    protocol would.
    """
    verifier = BitValidityProof(group, public_key)
    for sender, operand, proofs in claims:
        if not isinstance(proofs, (list, tuple)) or len(proofs) != operand.bit_length:
            raise ProtocolAbort(
                f"P{sender} sent malformed bit-encryption proofs",
                blamed=sender, phase=phase,
            )

    if batch:
        from repro.crypto.zkp import RelationBatcher, derive_batch_coefficients

        flat = [
            (sender, bit_ct, proof)
            for sender, operand, proofs in claims
            for bit_ct, proof in zip(operand, proofs)
        ]
        if all(
            verifier.structurally_sound(bit_ct, proof)
            and verifier.binding_holds(bit_ct, proof)
            for _, bit_ct, proof in flat
        ):
            materials = [
                verifier.material(bit_ct, proof) for _, bit_ct, proof in flat
            ]
            coefficients = derive_batch_coefficients(
                materials, context=b"repro-batch-bitproof-v1"
            )
            batcher = RelationBatcher(group)
            for (_, bit_ct, proof), s in zip(flat, coefficients):
                verifier.add_relations(batcher, bit_ct, proof, s)
            if batcher.holds():
                return

    for sender, operand, proofs in claims:
        for bit_ct, proof in zip(operand, proofs):
            if not verifier.verify(bit_ct, proof):
                raise ProtocolAbort(
                    f"P{sender} sent an invalid bit-encryption proof",
                    blamed=sender, phase=phase,
                )
    if batch:
        raise ProtocolAbort(
            "batch verification failed but no single bit proof did", phase=phase
        )


class HomomorphicComparator:
    """Evaluates the circuit over exponential-ElGamal ciphertexts.

    ``naive_suffix=True`` recomputes every suffix sum from scratch
    (``O(l²)`` ciphertext additions, matching the paper's step-7 cost
    accounting); the default reuses a running suffix sum (``O(l)``).
    The outputs are identical; the ablation bench contrasts the costs.

    ``multiexp`` routes the circuit's short scalars (``±weight``, the
    plaintext shifts) through :mod:`repro.math.multiexp` kernels;
    ``pool`` additionally serves generator powers from a fixed-base
    table.  Both produce element-identical τ sets — only the operation
    counts (and wall-clock) change.
    """

    def __init__(
        self,
        group: Group,
        naive_suffix: bool = False,
        *,
        multiexp: bool = False,
        pool: Optional["RandomnessPool"] = None,
    ):
        self.group = group
        self.scheme = ExponentialElGamal(group, pool=pool, multiexp=multiexp)
        self.naive_suffix = naive_suffix
        # Set by every encrypted_taus call: homomorphic additions spent on
        # suffix sums.  The default path is asserted O(l); the naive path
        # is the paper's O(l²) accounting, kept for the ablation benches.
        self.last_suffix_adds = 0

    def encrypted_taus(
        self, my_beta: int, other_bits: BitwiseCiphertext
    ) -> List[Ciphertext]:
        """``[E(τ^1), …, E(τ^l)]`` comparing ``my_beta`` against the
        encrypted ``β_i``.  A zero plaintext will exist iff
        ``my_beta < β_i``."""
        width = other_bits.bit_length
        if width <= 0:
            raise ProtocolError("cannot compare against an empty bitwise operand")
        if my_beta < 0 or my_beta >= (1 << width):
            raise ProtocolError(
                f"own beta does not fit the operand's {width}-bit width"
            )
        my_bits = int_to_bits(my_beta, width)
        gammas = [
            self._encrypted_xor_with_plain(bit_ct, my_bit)
            for bit_ct, my_bit in zip(other_bits, my_bits)
        ]
        self.last_suffix_adds = 0
        if self.naive_suffix:
            suffix_sums = [
                self._sum_ciphertexts(gammas[t:]) for t in range(1, width + 1)
            ]
        else:
            suffix_sums = self._running_suffix_sums(gammas)
            # Regression guard: the running-suffix pass must stay linear in
            # the bit width — at most one addition per position, never the
            # O(l²) recomputation the naive path pays.
            assert self.last_suffix_adds <= width, (
                "running suffix pass exceeded its O(l) budget"
            )
        taus: List[Ciphertext] = []
        for t in range(1, width + 1):
            weight = width - t + 1
            # ω^t = weight − weight·γ^t + Σ_{v>t} γ^v
            omega = self.scheme.scalar_mul(gammas[t - 1], -weight)
            omega = self.scheme.add(omega, suffix_sums[t - 1])
            omega = self.scheme.add_plain(omega, weight)
            taus.append(self.scheme.add_plain(omega, my_bits[t - 1]))
        return taus

    # -- helpers ---------------------------------------------------------------
    def _encrypted_xor_with_plain(self, bit_ct: Ciphertext, plain_bit: int) -> Ciphertext:
        """``E(b) -> E(b ⊕ p)`` for a known bit ``p``: identity or ``E(1-b)``."""
        if plain_bit == 0:
            return bit_ct
        return self.scheme.add_plain(self.scheme.negate(bit_ct), 1)

    def _running_suffix_sums(self, gammas: Sequence[Ciphertext]) -> List[Ciphertext]:
        """``sums[t-1] = E(Σ_{v>t} γ^v)`` with one pass from the top bit."""
        width = len(gammas)
        zero = Ciphertext(c1=self.group.identity(), c2=self.group.identity())
        sums = [zero] * width
        running = zero
        for t in range(width - 1, 0, -1):
            running = self.scheme.add(running, gammas[t])
            self.last_suffix_adds += 1
            sums[t - 1] = running
        return sums

    def _sum_ciphertexts(self, items: Sequence[Ciphertext]) -> Ciphertext:
        total = Ciphertext(c1=self.group.identity(), c2=self.group.identity())
        for item in items:
            total = self.scheme.add(total, item)
            self.last_suffix_adds += 1
        return total
