"""The "SS framework" baseline: sorting-network SMP sort over shares.

Mirrors the protocol of Jónsson, Kreitz and Uddin ("Secure multi-party
sorting and applications"): embed a secret-shared comparison primitive
into a data-oblivious sorting network.  Each comparator computes the
shared bit ``c = [a < b]`` and conditionally swaps both the value lanes
and parallel *index* lanes:

    min = b + c·(a − b)          (one multiplication)
    max = a + b − min            (free)

The index lanes let each participant learn her rank at the end — and
opening them reveals the *entire* permutation to every party, which is
precisely the identity-linkability weakness the paper's framework
removes.

Cost per comparator: one shared comparison (≈ ``3·log p`` multiplications
with our LSB gadget; ``279l + 5`` under the paper's Nishide-Ohta
accounting) plus two conditional-swap multiplications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sharing.arithmetic import SSContext, SSMetrics, SharedValue
from repro.sharing.comparison import less_than
from repro.sorting.networks import SortingNetwork, batcher_odd_even


@dataclass
class SSSortResult:
    """Outcome of a shared sort: ranks, opened order, and the bill."""

    ranks: Dict[int, int]              # party id (1-based) -> rank (1 = largest)
    sorted_values: List[int]           # ascending, opened
    comparator_count: int
    network_depth: int
    metrics: SSMetrics


def ss_sort_shared(
    context: SSContext,
    values: Sequence[SharedValue],
    network: Optional[SortingNetwork] = None,
) -> List[SharedValue]:
    """Sort shared values ascending; returns the shared sorted lanes."""
    network = network or batcher_odd_even(len(values))
    lanes = list(values)
    for i, j in network.comparators:
        a, b = lanes[i], lanes[j]
        swap_bit = less_than(context, a, b)
        minimum = b + context.multiply(swap_bit, a - b)
        maximum = a + b - minimum
        lanes[i], lanes[j] = minimum, maximum
    return lanes


def ss_sort_with_ranks(
    context: SSContext,
    plain_values: Sequence[int],
    network: Optional[SortingNetwork] = None,
) -> SSSortResult:
    """The full baseline: share inputs, sort with index tracking, open ranks.

    ``plain_values[i]`` belongs to party ``i+1``.  Values must lie in
    ``[0, p/2)`` (the comparison precondition); the β values always do.
    Ranks are non-increasing in value: the largest value gets rank 1.
    """
    n = len(plain_values)
    half = context.p // 2
    for value in plain_values:
        if not 0 <= value < half:
            raise ValueError("values must lie in [0, p/2) for shared comparison")
    network = network or batcher_odd_even(n)
    value_lanes: List[SharedValue] = [context.share(v) for v in plain_values]
    index_lanes: List[SharedValue] = [context.share(i + 1) for i in range(n)]
    for i, j in network.comparators:
        a, b = value_lanes[i], value_lanes[j]
        ia, ib = index_lanes[i], index_lanes[j]
        swap_bit = less_than(context, a, b)
        minimum = b + context.multiply(swap_bit, a - b)
        value_lanes[i], value_lanes[j] = minimum, a + b - minimum
        index_min = ib + context.multiply(swap_bit, ia - ib)
        index_lanes[i], index_lanes[j] = index_min, ia + ib - index_min
    sorted_values = [lane.open() for lane in value_lanes]
    opened_indexes = [lane.open() for lane in index_lanes]
    # Ascending position pos holds the (pos+1)-th smallest; rank counts from
    # the top, and equal values share the best rank among them (matching the
    # framework's zero-count semantics).
    ranks: Dict[int, int] = {}
    for position, party in enumerate(opened_indexes):
        value = sorted_values[position]
        strictly_larger = sum(1 for other in sorted_values if other > value)
        ranks[party] = strictly_larger + 1
    return SSSortResult(
        ranks=ranks,
        sorted_values=sorted_values,
        comparator_count=network.comparator_count,
        network_depth=network.depth,
        metrics=context.metrics,
    )
