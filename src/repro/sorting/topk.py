"""Probabilistic privacy-preserving top-k (Burkhart-Dimitropoulos style).

The related-work baseline ("Fast privacy-preserving top-k queries using
secret sharing", ICCCN'10) trades exactness for speed.  We reproduce its
characteristic behaviour with a threshold-search variant over the same
secret-sharing substrate:

* binary-search a public threshold ``θ``;
* at each probe, compute shared indicator bits ``[v_i ≥ θ]`` and open
  only their *sum* (how many values clear the threshold);
* stop when the count equals ``k`` — or fail after the search space is
  exhausted, which happens exactly when ties straddle the k-th place.

As the paper notes of the original, the protocol is fast but "cannot be
guaranteed to terminate with a correct result every time"; the
:class:`TopKResult` reports success or failure honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sharing.arithmetic import SSContext, SSMetrics, SharedValue
from repro.sharing.comparison import less_than


@dataclass
class TopKResult:
    """Outcome of a probabilistic top-k run."""

    succeeded: bool
    members: List[int]           # party ids (1-based) in the top-k, if succeeded
    threshold: Optional[int]
    probes: int
    metrics: SSMetrics


def probabilistic_top_k(
    context: SSContext,
    plain_values: Sequence[int],
    k: int,
    value_bound: int,
) -> TopKResult:
    """Find the parties holding the ``k`` largest values.

    ``plain_values[i]`` belongs to party ``i+1``; all values must lie in
    ``[0, value_bound)`` with ``value_bound ≤ p/2``.
    """
    n = len(plain_values)
    if not 1 <= k <= n:
        raise ValueError("k must be in [1, n]")
    if value_bound > context.p // 2:
        raise ValueError("value bound exceeds the comparison precondition")
    shared: List[SharedValue] = [context.share(v) for v in plain_values]

    low, high = 0, value_bound
    probes = 0
    while low < high:
        theta = (low + high) // 2
        count, indicators = _count_at_least(context, shared, theta)
        probes += 1
        if count == k:
            members = _open_members(context, indicators)
            return TopKResult(
                succeeded=True, members=members, threshold=theta,
                probes=probes, metrics=context.metrics,
            )
        if count > k:
            low = theta + 1     # too many clear the bar: raise it
        else:
            high = theta        # too few: lower it
    return TopKResult(
        succeeded=False, members=[], threshold=None,
        probes=probes, metrics=context.metrics,
    )


def _count_at_least(
    context: SSContext, shared: Sequence[SharedValue], theta: int
) -> Tuple[int, List[SharedValue]]:
    """Open ``Σ_i [v_i ≥ θ]`` — the count, not the individual bits.

    Also returns the shared indicator bits themselves, so the member
    reveal after a successful probe opens these instead of re-running
    one comparison circuit per party.
    """
    theta_shared = context.constant(theta)
    total = context.constant(0)
    indicators: List[SharedValue] = []
    for value in shared:
        below = less_than(context, value, theta_shared)   # [v < θ]
        indicators.append(1 - below)
        total = total + indicators[-1]
    return context.open(total), indicators


def _open_members(
    context: SSContext, indicators: Sequence[SharedValue]
) -> List[int]:
    """Open the successful probe's cached indicator bits (one opening,
    zero comparisons, per party)."""
    members: List[int] = []
    for party_index, indicator in enumerate(indicators, start=1):
        if context.open(indicator) == 1:
            members.append(party_index)
    return members
