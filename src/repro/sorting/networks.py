"""Data-oblivious sorting networks.

A sorting network is a fixed sequence of compare-exchange gates
``(i, j)`` with ``i < j``; applying each gate puts the smaller value on
lane ``i``.  Because the gate sequence is independent of the data,
networks compose with secret-shared comparators — the basis of the
Jónsson et al. SMP sorting baseline, which the paper credits with
``O(n (log n)²)`` comparisons (Batcher's odd-even mergesort).

Arbitrary (non-power-of-two) sizes use the standard padding argument:
generate the network for the next power of two, then drop every gate
touching a lane ``≥ n``.  Dropped gates would only ever see the ``+∞``
padding values, which an ascending network never moves downward, so the
pruned network still sorts (asserted exhaustively in tests via the 0-1
principle).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import List, MutableSequence, Sequence, Tuple

Comparator = Tuple[int, int]


@dataclass(frozen=True)
class SortingNetwork:
    """An immutable comparator sequence with derived structure."""

    name: str
    size: int
    comparators: Tuple[Comparator, ...]

    def __post_init__(self):
        for i, j in self.comparators:
            if not 0 <= i < j < self.size:
                raise ValueError(f"bad comparator ({i}, {j}) for size {self.size}")

    @property
    def comparator_count(self) -> int:
        return len(self.comparators)

    def layers(self) -> List[List[Comparator]]:
        """Greedy layering: gates in one layer touch disjoint lanes.

        The number of layers is the network depth — the round count when
        comparators within a layer run in parallel.
        """
        layers: List[List[Comparator]] = []
        busy_until: List[int] = [0] * self.size
        for gate in self.comparators:
            i, j = gate
            layer_index = max(busy_until[i], busy_until[j])
            if layer_index == len(layers):
                layers.append([])
            layers[layer_index].append(gate)
            busy_until[i] = busy_until[j] = layer_index + 1
        return layers

    @property
    def depth(self) -> int:
        return len(self.layers())


def apply_network(network: SortingNetwork, values: Sequence) -> List:
    """Run the network on plain values (ascending)."""
    if len(values) != network.size:
        raise ValueError("value count must equal the network size")
    lanes: MutableSequence = list(values)
    for i, j in network.comparators:
        if lanes[i] > lanes[j]:
            lanes[i], lanes[j] = lanes[j], lanes[i]
    return list(lanes)


def verify_zero_one(network: SortingNetwork) -> bool:
    """0-1 principle: a network sorts all inputs iff it sorts all 0/1 inputs.

    Exponential in ``size`` — meant for test sizes.
    """
    for bits in product((0, 1), repeat=network.size):
        if apply_network(network, bits) != sorted(bits):
            return False
    return True


# ---------------------------------------------------------------------------
# Batcher odd-even mergesort
# ---------------------------------------------------------------------------

def batcher_odd_even(n: int) -> SortingNetwork:
    """Batcher's odd-even mergesort network for any ``n ≥ 1``.

    ``O(n (log n)²)`` comparators, depth ``O((log n)²)`` — the network
    the Jónsson et al. baseline uses ("a variant of the merge sort").
    """
    if n < 1:
        raise ValueError("network size must be positive")
    padded = _next_power_of_two(n)
    gates: List[Comparator] = []
    _batcher_sort(0, padded, gates)
    pruned = tuple((i, j) for i, j in gates if j < n)
    return SortingNetwork(name="batcher-odd-even", size=n, comparators=pruned)


def _batcher_sort(lo: int, length: int, gates: List[Comparator]) -> None:
    if length <= 1:
        return
    half = length // 2
    _batcher_sort(lo, half, gates)
    _batcher_sort(lo + half, half, gates)
    _batcher_merge(lo, length, 1, gates)


def _batcher_merge(lo: int, length: int, stride: int, gates: List[Comparator]) -> None:
    double = stride * 2
    if double < length:
        _batcher_merge(lo, length, double, gates)
        _batcher_merge(lo + stride, length, double, gates)
        for i in range(lo + stride, lo + length - stride, double):
            gates.append((i, i + stride))
    else:
        gates.append((lo, lo + stride))


# ---------------------------------------------------------------------------
# Bitonic sort
# ---------------------------------------------------------------------------

def bitonic(n: int) -> SortingNetwork:
    """Bitonic sorting network for any ``n ≥ 1`` (padded and pruned).

    Uses the monotone-comparator (V-merge) formulation: after sorting
    both halves ascending, the first merge stage compares lane ``i``
    with lane ``length−1−i`` (the "V"), after which each half is bitonic
    and plain half-cleaners finish.  Every gate is ascending ``(i, j)``
    with ``i < j``, so the padding/pruning argument applies.
    """
    if n < 1:
        raise ValueError("network size must be positive")
    padded = _next_power_of_two(n)
    gates: List[Comparator] = []
    _bitonic_sort(0, padded, gates)
    pruned = tuple((i, j) for i, j in gates if j < n)
    return SortingNetwork(name="bitonic", size=n, comparators=pruned)


def _bitonic_sort(lo: int, length: int, gates: List[Comparator]) -> None:
    if length <= 1:
        return
    half = length // 2
    _bitonic_sort(lo, half, gates)
    _bitonic_sort(lo + half, half, gates)
    for i in range(half):
        gates.append((lo + i, lo + length - 1 - i))
    _bitonic_clean(lo, half, gates)
    _bitonic_clean(lo + half, half, gates)


def _bitonic_clean(lo: int, length: int, gates: List[Comparator]) -> None:
    if length <= 1:
        return
    half = length // 2
    for i in range(half):
        gates.append((lo + i, lo + i + half))
    _bitonic_clean(lo, half, gates)
    _bitonic_clean(lo + half, half, gates)


# ---------------------------------------------------------------------------
# Pairwise sorting network (Parberry 1992)
# ---------------------------------------------------------------------------

def pairwise(n: int) -> SortingNetwork:
    """A pairwise-style sorting network (after Parberry '92), padded/pruned.

    The other classic ``O(n (log n)²)`` recipe: sort adjacent pairs,
    recursively sort the odd- and even-indexed subsequences, then fix up
    with decreasing-stride comparators.  This implementation's cleanup
    stage is slightly heavier than the optimal Parberry wiring (~1.2×
    Batcher's gate count, same asymptotics) — verified sorting via the
    0-1 principle; useful as an independent construction for the
    SS-baseline network ablation.
    """
    if n < 1:
        raise ValueError("network size must be positive")
    padded = _next_power_of_two(n)
    gates: List[Comparator] = []
    _pairwise_sort(list(range(padded)), gates)
    pruned = tuple((i, j) for i, j in gates if j < n)
    return SortingNetwork(name="pairwise", size=n, comparators=pruned)


def _pairwise_sort(lanes: List[int], gates: List[Comparator]) -> None:
    length = len(lanes)
    if length <= 1:
        return
    # Stage 1: compare adjacent pairs.
    for index in range(0, length - 1, 2):
        gates.append((lanes[index], lanes[index + 1]))
    # Stage 2: recursively sort evens and odds.
    evens = lanes[0::2]
    odds = lanes[1::2]
    _pairwise_sort(evens, gates)
    _pairwise_sort(odds, gates)
    # Stage 3: merge with decreasing strides over the odd/even interleave.
    stride = length // 2
    while stride > 1:
        half = stride // 2
        for index in range(1, length - stride, 2):
            partner = index + stride - 1
            if partner < length:
                gates.append((lanes[index], lanes[partner]))
        stride = half
    # Final cleanup pass: adjacent odd-even comparators.
    for index in range(1, length - 1, 2):
        gates.append((lanes[index], lanes[index + 1]))


# ---------------------------------------------------------------------------
# Odd-even transposition (brick) sort
# ---------------------------------------------------------------------------

def odd_even_transposition(n: int) -> SortingNetwork:
    """The ``O(n²)``-comparator, depth-``n`` brick network (ablation)."""
    if n < 1:
        raise ValueError("network size must be positive")
    gates: List[Comparator] = []
    for round_index in range(n):
        start = round_index % 2
        for i in range(start, n - 1, 2):
            gates.append((i, i + 1))
    return SortingNetwork(
        name="odd-even-transposition", size=n, comparators=tuple(gates)
    )


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power
