"""Multiparty sorting: networks, the SS baseline, probabilistic top-k.

* :mod:`repro.sorting.networks` — data-oblivious sorting networks
  (Batcher odd-even mergesort, bitonic, odd-even transposition).
* :mod:`repro.sorting.ss_sort` — the Jónsson-et-al.-style baseline: a
  sorting network whose comparators run over Shamir shares ("SS
  framework" in the paper's evaluation).
* :mod:`repro.sorting.topk` — the Burkhart-Dimitropoulos probabilistic
  top-k baseline from related work.
"""

from repro.sorting.networks import (
    SortingNetwork,
    apply_network,
    batcher_odd_even,
    bitonic,
    odd_even_transposition,
    pairwise,
)
from repro.sorting.ss_sort import SSSortResult, ss_sort_shared, ss_sort_with_ranks
from repro.sorting.topk import TopKResult, probabilistic_top_k

__all__ = [
    "SSSortResult",
    "SortingNetwork",
    "TopKResult",
    "apply_network",
    "batcher_odd_even",
    "bitonic",
    "odd_even_transposition",
    "pairwise",
    "probabilistic_top_k",
    "ss_sort_shared",
    "ss_sort_with_ranks",
]
