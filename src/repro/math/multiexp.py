"""Multi-exponentiation kernels: Straus/Shamir interleaving and batching.

Three complementary tricks, all expressed over the abstract
:class:`repro.groups.base.Group` interface (``mul``/``inv`` only, so the
operation meters record what is *actually* spent):

* :func:`multi_exp` — Straus's simultaneous ("Shamir's trick")
  exponentiation: ``Π base_i^{e_i}`` in ONE interleaved window pass.
  The squaring chain is shared between all bases, so a 2-base product
  such as ElGamal's ``g^M·y^r`` costs ≈ ``λ + 2λ/w`` multiplications
  instead of the ``2·1.5λ`` of two independent square-and-multiply runs.
* :func:`small_exp` — plain square-and-multiply over ``group.mul`` for
  *short* exponents.  ``group.exp`` implementations reduce the exponent
  modulo the (full-size) group order first, so a tiny negative scalar
  like the comparison circuit's ``-ω`` weight otherwise explodes into a
  full λ-bit exponentiation; ``inv`` + a 5-bit ladder is hundreds of
  times cheaper and produces the identical group element.
* :func:`exp_many` — batched fixed-base exponentiation: one windowed
  table (reusing :class:`repro.groups.fixed_base.PrecomputedBase`)
  amortized over many exponents of the same base — the workhorse of the
  offline randomness pool (:mod:`repro.crypto.precompute`).

Every function returns exactly the element the naive ``group.exp``
composition would: callers may switch kernels freely without perturbing
protocol transcripts.

All three kernels are built on ``group.mul``/``group.inv`` only, which
concrete groups dispatch through :mod:`repro.math.backend` — so the
Straus windows and fixed-base ladders ride the native backend's
``mulmod`` automatically, composing the two speedups (fewer operations
× faster operations) without further wiring here.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.groups.base import Element, Group
from repro.groups.fixed_base import PrecomputedBase

#: Exponents at most this many bits take the :func:`small_exp` ladder when
#: an accelerated scheme asks for a scalar multiple; anything longer falls
#: back to the group's native exponentiation.
SMALL_EXPONENT_BITS = 16


def centered_exponent(exponent: int, order: int) -> int:
    """The representative of ``exponent`` mod ``order`` in ``(-q/2, q/2]``.

    ``base^e = (base^{-1})^{q-e}``, so the cheaper of the two signed
    representatives decides whether one inversion buys a much shorter
    exponent — the comparison circuit's ``-weight`` scalars reduce from
    λ bits to ~5 bits this way.
    """
    e = exponent % order
    if e > order - e:
        return e - order
    return e


def small_exp(group: Group, base: Element, exponent: int) -> Element:
    """``base^exponent`` by square-and-multiply over ``group.mul``.

    Intended for short exponents (|exponent| up to a few dozen bits)
    where the ~``2·|e|`` multiplications beat a full-width ``group.exp``.
    Negative exponents invert the base first.
    """
    if exponent < 0:
        base = group.inv(base)
        exponent = -exponent
    if exponent == 0:
        return group.identity()
    accumulator = base
    for bit_index in range(exponent.bit_length() - 2, -1, -1):
        accumulator = group.mul(accumulator, accumulator)
        if (exponent >> bit_index) & 1:
            accumulator = group.mul(accumulator, base)
    return accumulator


def multi_exp(
    group: Group,
    bases: Sequence[Element],
    exponents: Sequence[int],
    window_bits: int = 4,
) -> Element:
    """``Π bases[i]^exponents[i]`` via Straus's interleaved windowing.

    One shared squaring chain serves every base; each base contributes a
    small odd-powers table and one table multiplication per non-zero
    window of its exponent.  Exponents are reduced to their centered
    representative first, so near-order exponents (e.g. ``-k mod q``)
    stay short.
    """
    if len(bases) != len(exponents):
        raise ValueError("bases and exponents must have the same length")
    if not 1 <= window_bits <= 8:
        raise ValueError("window must be between 1 and 8 bits")
    order = group.order
    prepared: List[tuple] = []
    for base, exponent in zip(bases, exponents):
        e = centered_exponent(exponent, order)
        if e < 0:
            base, e = group.inv(base), -e
        if e:
            prepared.append((base, e))
    if not prepared:
        return group.identity()

    window_size = 1 << window_bits
    tables: List[List[Element]] = []
    for base, _ in prepared:
        row = [group.identity()]
        accumulator = group.identity()
        for _ in range(1, window_size):
            accumulator = group.mul(accumulator, base)
            row.append(accumulator)
        tables.append(row)

    max_bits = max(e.bit_length() for _, e in prepared)
    windows = (max_bits + window_bits - 1) // window_bits
    mask = window_size - 1
    result = group.identity()
    started = False  # skip the no-op squarings of the leading identity
    for window_index in range(windows - 1, -1, -1):
        if started:
            for _ in range(window_bits):
                result = group.mul(result, result)
        for (_, e), row in zip(prepared, tables):
            digit = (e >> (window_index * window_bits)) & mask
            if digit:
                result = group.mul(result, row[digit])
                started = True
    return result


def exp_many(
    group: Group,
    base: Element,
    exponents: Sequence[int],
    window_bits: int = 4,
) -> List[Element]:
    """``[base^e for e in exponents]`` with one shared fixed-base table.

    The table build costs ``(λ/w)·(2^w − 1)`` multiplications once;
    every exponentiation after that is ~``λ/w`` multiplications, so the
    batch wins over repeated ``group.exp`` from a handful of exponents
    up.  This is what the offline randomness pool calls to mass-produce
    ``(g^r, y^r)`` pairs.
    """
    if not exponents:
        return []
    table = PrecomputedBase(group, base, window_bits=window_bits)
    return [table.exp(exponent) for exponent in exponents]


def naive_multi_exp(
    group: Group, bases: Sequence[Element], exponents: Sequence[int]
) -> Element:
    """Reference implementation: independent ``group.exp`` per base.

    Exists so property tests (and the op-count benches) can compare the
    kernels against the textbook evaluation they replace.
    """
    if len(bases) != len(exponents):
        raise ValueError("bases and exponents must have the same length")
    result = group.identity()
    for base, exponent in zip(bases, exponents):
        result = group.mul(result, group.exp(base, exponent))
    return result
