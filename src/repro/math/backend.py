"""Pluggable arithmetic backend: the native-speed seam under every group.

All hot arithmetic in the library — group multiplication and
exponentiation, Paillier's Z_{n²} operations, Shamir field arithmetic,
Miller-Rabin, Tonelli-Shanks — bottoms out in a handful of bigint
primitives.  This module defines that primitive set once
(:class:`ArithmeticBackend`) with two interchangeable implementations:

* :class:`PythonBackend` — pure CPython ``pow``/``%`` arithmetic, always
  available, the reference the rest of the stack is tested against;
* :class:`Gmpy2Backend` — the same primitives on :mod:`gmpy2` (GMP),
  auto-detected at import, typically 5-20x faster at 2048-bit sizes.

Design invariants (enforced by ``tests/test_backend_equivalence.py``):

* **Determinism.**  A backend is *arithmetic only*.  Both
  implementations compute the same mathematical function and always
  return plain Python ``int``s, so serialized elements, transcripts,
  and fingerprints are byte-identical whichever backend ran.
* **No randomness crosses the seam.**  Backends expose no sampling
  interface at all; every random draw stays in :mod:`repro.math.rng`
  and the precompute pool, so the R-RNG/R-POOL lint invariants hold
  whatever backend is active (this module is *not* in the linter's
  RNG-allowed set — see ``repro.lint.registry``).
* **Metering is unchanged.**  :class:`~repro.groups.base.OperationCounter`
  accounting happens above the seam (in ``group.mul``/``group.exp``),
  so operation counts are backend-independent by construction.

Selection:

* at import, the active backend is resolved from the ``REPRO_BACKEND``
  environment variable (``python`` / ``gmpy2`` / ``auto``, default
  ``auto`` = gmpy2 when importable, else python);
* :func:`set_backend` / :func:`use_backend` override it at runtime
  (``FrameworkConfig.backend`` and the CLI ``--backend`` flag call
  these); the sentinel ``"auto"`` means "keep whatever is active", so
  wrapping code can pin a backend without every callee re-detecting;
* worker processes re-select the parent's choice via
  :func:`worker_initializer` (plumbed through
  :class:`repro.runtime.parallel.WorkerPool`), so a fork/spawn child
  never silently diverges from the parent's configuration.

Callers must go through the module-level functions (``backend.powmod``)
or :func:`get_backend` at *call* time — never ``from repro.math.backend
import powmod`` — so a runtime switch reaches every call site.
"""

from __future__ import annotations

import importlib
import os
import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "ArithmeticBackend",
    "BackendUnavailable",
    "PythonBackend",
    "Gmpy2Backend",
    "available_backends",
    "backend_choices",
    "get_backend",
    "active_backend_name",
    "set_backend",
    "use_backend",
    "register_backend",
    "worker_initializer",
    "powmod",
    "mulmod",
    "invert",
    "gcd",
    "jacobi",
    "bit_length",
]


class BackendUnavailable(RuntimeError):
    """Raised when an explicitly requested backend cannot be constructed."""


class ArithmeticBackend:
    """The minimal primitive set every implementation must provide.

    All methods take and return plain Python ``int``s; implementations
    may use native types internally but must convert back, so values
    are interchangeable across backends (hashing, pickling, and
    serialization see no difference).
    """

    #: Stable identifier used by selection and worker re-initialization.
    name: str = "abstract"
    #: True when the backend is backed by a native (non-CPython) library.
    native: bool = False

    # -- core modular arithmetic -------------------------------------------
    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        """``base ** exponent mod modulus`` (exponent may be negative)."""
        raise NotImplementedError

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        """``a * b mod modulus``."""
        raise NotImplementedError

    def invert(self, a: int, modulus: int) -> int:
        """Inverse of ``a`` modulo ``modulus``.

        Raises :class:`ValueError` when no inverse exists; the message
        must not echo ``a`` (callers pass secret exponents).
        """
        raise NotImplementedError

    # -- number-theoretic helpers ------------------------------------------
    def gcd(self, a: int, b: int) -> int:
        raise NotImplementedError

    def jacobi(self, a: int, n: int) -> int:
        """Jacobi symbol ``(a/n)`` for odd positive ``n``."""
        raise NotImplementedError

    # -- primality hooks ----------------------------------------------------
    # Both hooks delegate to the library's own *deterministic*
    # Miller-Rabin (repro.math.primes), which itself runs on this
    # backend's powmod/mulmod.  gmpy2 ships a native is_prime, but its
    # witness selection is implementation-defined — routing through our
    # fixed witness schedule keeps prime generation bit-reproducible
    # across backends, which the transcript-equivalence guarantee needs.
    def is_prime(self, n: int) -> bool:
        from repro.math.primes import is_prime as _is_prime

        return _is_prime(n)

    def next_prime(self, n: int) -> int:
        from repro.math.primes import next_prime as _next_prime

        return _next_prime(n)

    # -- bit-length helpers --------------------------------------------------
    def bit_length(self, n: int) -> int:
        return int(n).bit_length()

    def byte_length(self, n: int) -> int:
        return (int(n).bit_length() + 7) // 8

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, native={self.native})"


class PythonBackend(ArithmeticBackend):
    """Pure-CPython reference implementation (always available)."""

    name = "python"
    native = False

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return pow(base, exponent, modulus)

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        return a * b % modulus

    def invert(self, a: int, modulus: int) -> int:
        try:
            return pow(a, -1, modulus)
        except ValueError:
            raise ValueError(
                f"value is not invertible modulo {modulus}"
            ) from None

    def gcd(self, a: int, b: int) -> int:
        a, b = abs(a), abs(b)
        while b:
            a, b = b, a % b
        return a

    def jacobi(self, a: int, n: int) -> int:
        # Binary Jacobi; n validated odd/positive by the caller
        # (repro.math.modular.jacobi_symbol).
        a %= n
        result = 1
        while a:
            while a % 2 == 0:
                a //= 2
                if n % 8 in (3, 5):
                    result = -result
            a, n = n, a
            if a % 4 == 3 and n % 4 == 3:
                result = -result
            a %= n
        return result if n == 1 else 0


class Gmpy2Backend(ArithmeticBackend):
    """GMP-backed implementation via :mod:`gmpy2` (optional).

    Every method converts its result back to a plain ``int`` so nothing
    above the seam ever sees an ``mpz`` — element hashing, pickling to
    workers, and wire serialization behave exactly as on the python
    backend.
    """

    name = "gmpy2"
    native = True

    def __init__(self, module=None):
        g = module if module is not None else importlib.import_module("gmpy2")
        self._gmpy2 = g
        self._mpz = g.mpz
        self._powmod = g.powmod
        self._invert = g.invert
        self._gcd = g.gcd
        self._jacobi = g.jacobi

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return int(self._powmod(base, exponent, modulus))

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        return int(self._mpz(a) * b % modulus)

    def invert(self, a: int, modulus: int) -> int:
        try:
            return int(self._invert(a, modulus))
        except ZeroDivisionError:
            raise ValueError(
                f"value is not invertible modulo {modulus}"
            ) from None

    def gcd(self, a: int, b: int) -> int:
        return int(self._gcd(a, b))

    def jacobi(self, a: int, n: int) -> int:
        return int(self._jacobi(a, n))


# ---------------------------------------------------------------------------
# Registry and selection
# ---------------------------------------------------------------------------

#: Choices FrameworkConfig / the CLI accept.
AUTO = "auto"

_FACTORIES: Dict[str, Callable[[], ArithmeticBackend]] = {
    "python": PythonBackend,
    "gmpy2": Gmpy2Backend,
}

_lock = threading.Lock()
_active: ArithmeticBackend


def register_backend(name: str, factory: Callable[[], ArithmeticBackend]) -> None:
    """Register an additional backend implementation (tests, extensions)."""
    if name == AUTO:
        raise ValueError("'auto' is a selection sentinel, not a backend name")
    _FACTORIES[name] = factory


def backend_choices() -> List[str]:
    """Every name :func:`set_backend` accepts, including ``auto``."""
    return [AUTO] + sorted(_FACTORIES)


def available_backends() -> List[str]:
    """Registered backends that can actually be constructed right now."""
    names = []
    for name in sorted(_FACTORIES):
        try:
            _FACTORIES[name]()
        # repro-lint: ignore[R-EXCEPT] -- availability probe: construction
        # failure IS the signal; nothing protocol-blamed can be in flight
        except Exception:
            continue
        names.append(name)
    return names


def _detect(choice: str) -> ArithmeticBackend:
    """Resolve ``python``/``gmpy2``/``auto`` to a constructed backend.

    ``auto`` prefers gmpy2 and falls back to python; an explicit name
    raises :class:`BackendUnavailable` when construction fails.
    """
    if choice == AUTO:
        try:
            return _FACTORIES["gmpy2"]()
        # repro-lint: ignore[R-EXCEPT] -- optional-dependency probe at
        # selection time; falling back to the reference is the contract
        except Exception:
            return PythonBackend()
    try:
        factory = _FACTORIES[choice]
    except KeyError:
        raise BackendUnavailable(
            f"unknown arithmetic backend {choice!r}; "
            f"registered: {sorted(_FACTORIES)}"
        ) from None
    try:
        return factory()
    except BackendUnavailable:
        raise
    except Exception as exc:
        raise BackendUnavailable(
            f"arithmetic backend {choice!r} is not available: {exc}"
        ) from exc


def _detect_from_environment() -> ArithmeticBackend:
    choice = os.environ.get("REPRO_BACKEND", AUTO).strip().lower() or AUTO
    try:
        return _detect(choice)
    except BackendUnavailable:
        # Import must never fail because of an env var: fall back to the
        # always-available reference (explicit set_backend still raises).
        return PythonBackend()


def get_backend() -> ArithmeticBackend:
    """The currently active backend object."""
    return _active


def active_backend_name() -> str:
    return _active.name


def set_backend(choice: str, *, strict: bool = True) -> ArithmeticBackend:
    """Activate a backend process-wide and return it.

    ``choice`` is a registered name or ``"auto"``; ``auto`` keeps the
    currently active backend (detection already ran at import), so
    config defaults never clobber an explicit earlier selection.  With
    ``strict=False`` an unavailable choice degrades to the python
    reference instead of raising — the worker-process path uses this,
    which is safe precisely because backends are transcript-equivalent.
    """
    global _active
    if choice == AUTO:
        return _active
    try:
        selected = _detect(choice)
    except BackendUnavailable:
        if strict:
            raise
        selected = PythonBackend()
    with _lock:
        _active = selected
    return selected


@contextmanager
def use_backend(choice: str, *, strict: bool = True) -> Iterator[ArithmeticBackend]:
    """Scoped :func:`set_backend`: restores the previous backend on exit."""
    global _active
    previous = _active
    selected = set_backend(choice, strict=strict)
    try:
        yield selected
    finally:
        with _lock:
            _active = previous


def worker_initializer(backend_name: Optional[str]) -> None:
    """Re-select the parent's backend inside a freshly spawned/forked worker.

    Non-strict: a child that cannot construct the parent's backend
    (e.g. gmpy2 present in the parent venv only) degrades to the python
    reference — values are identical either way, only speed differs.
    """
    if backend_name:
        set_backend(backend_name, strict=False)


# ---------------------------------------------------------------------------
# Module-level convenience wrappers (always dispatch to the ACTIVE backend)
# ---------------------------------------------------------------------------

def powmod(base: int, exponent: int, modulus: int) -> int:
    return _active.powmod(base, exponent, modulus)


def mulmod(a: int, b: int, modulus: int) -> int:
    return _active.mulmod(a, b, modulus)


def invert(a: int, modulus: int) -> int:
    return _active.invert(a, modulus)


def gcd(a: int, b: int) -> int:
    return _active.gcd(a, b)


def jacobi(a: int, n: int) -> int:
    return _active.jacobi(a, n)


def bit_length(n: int) -> int:
    return _active.bit_length(n)


_active = _detect_from_environment()
