"""Randomness discipline for the whole library.

Every protocol object takes an :class:`RNG` so that

* production runs draw from the OS CSPRNG (:class:`SystemRNG`), and
* tests and benchmarks are exactly reproducible (:class:`SeededRNG`).

Protocol code must never call :mod:`random` or :mod:`secrets` directly.
"""

from __future__ import annotations

import hashlib
import random
import secrets
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class RNG:
    """Abstract randomness source.

    Subclasses implement :meth:`randbits`; everything else is derived.
    """

    def randbits(self, k: int) -> int:
        raise NotImplementedError

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        if low > high:
            raise ValueError("empty range")
        span = high - low + 1
        return low + self.randrange(span)

    def randrange(self, n: int) -> int:
        """Uniform integer in ``[0, n)`` via rejection sampling."""
        if n <= 0:
            raise ValueError("randrange needs a positive bound")
        k = n.bit_length()
        while True:
            value = self.randbits(k)
            if value < n:
                return value

    def rand_group_exponent(self, order: int) -> int:
        """Uniform element of ``Z_order`` — the standard exponent draw."""
        return self.randrange(order)

    def rand_nonzero(self, modulus: int) -> int:
        """Uniform element of ``Z_modulus \\ {0}``."""
        if modulus < 2:
            raise ValueError("modulus must be at least 2")
        return 1 + self.randrange(modulus - 1)

    def shuffle(self, items: List[T]) -> None:
        """In-place Fisher-Yates shuffle driven by this source."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randrange(i + 1)
            items[i], items[j] = items[j], items[i]

    def permutation(self, n: int) -> List[int]:
        """A uniform permutation of ``range(n)``."""
        perm = list(range(n))
        self.shuffle(perm)
        return perm

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randrange(len(items))]

    def sample_distinct(self, n: int, k: int) -> List[int]:
        """``k`` distinct values from ``range(n)`` in random order."""
        if k > n:
            raise ValueError("sample larger than population")
        perm = self.permutation(n)
        return perm[:k]


class SystemRNG(RNG):
    """OS CSPRNG-backed source for real runs."""

    def randbits(self, k: int) -> int:
        if k < 0:
            raise ValueError("bit count must be non-negative")
        if k == 0:
            return 0
        return secrets.randbits(k)


class SeededRNG(RNG):
    """Deterministic source for tests and benchmarks.

    Internally a Mersenne Twister; NOT cryptographically secure, which is
    fine because determinism, not secrecy, is the point in tests.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def getstate(self):
        """The generator's full position (opaque, picklable).

        The checkpoint layer snapshots this at phase boundaries;
        :class:`SystemRNG` deliberately has no counterpart — a CSPRNG
        stream position cannot (and must not) be replayed, so
        checkpoint rejoin degrades to plain-crash handling there.
        """
        return self._random.getstate()

    def setstate(self, state) -> None:
        """Restore a position captured by :meth:`getstate`."""
        self._random.setstate(state)

    def randbits(self, k: int) -> int:
        if k < 0:
            raise ValueError("bit count must be non-negative")
        if k == 0:
            return 0
        return self._random.getrandbits(k)

    def fork(self, label: str) -> "SeededRNG":
        """An independent deterministic child stream (per-party streams).

        Derived with a *stable* hash: the built-in ``hash()`` of a string
        is salted per process (PYTHONHASHSEED), which silently made
        "seeded" runs differ between processes — and made tests that
        rely on distinct per-party mask draws flaky once in a few dozen
        runs.
        """
        digest = hashlib.sha256(f"{self._seed}|{label}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF
        return SeededRNG(child_seed)
