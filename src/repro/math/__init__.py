"""Number-theoretic substrate: modular arithmetic, primality, randomness.

Everything above this package (groups, ElGamal, secret sharing, the
ranking framework itself) is built on these primitives.  Nothing here
depends on any other part of :mod:`repro`.
"""

from repro.math.modular import (
    crt_pair,
    egcd,
    int_from_bits,
    int_to_bits,
    is_quadratic_residue,
    jacobi_symbol,
    mod_inverse,
    mod_sqrt,
)
from repro.math.primes import (
    is_prime,
    is_safe_prime,
    next_prime,
    random_prime,
    random_safe_prime,
)
from repro.math.rng import SystemRNG, SeededRNG, RNG

__all__ = [
    "crt_pair",
    "egcd",
    "int_from_bits",
    "int_to_bits",
    "is_prime",
    "is_quadratic_residue",
    "is_safe_prime",
    "jacobi_symbol",
    "mod_inverse",
    "mod_sqrt",
    "next_prime",
    "random_prime",
    "random_safe_prime",
    "RNG",
    "SeededRNG",
    "SystemRNG",
]
