"""Primality testing and (safe) prime generation.

Miller-Rabin with *deterministic* witness schedules throughout: the
Jaeschke/Sorenson-Webster fixed set below ~3.3e24, and hash-derived
witnesses (SHA-256 counter stream keyed to the candidate) above it.
``is_prime`` is therefore a pure function of its input — no draw from
any RNG — so prime generation (and everything derived from it, e.g.
``FrameworkConfig.dp_field_prime``) is bit-reproducible across runs
*and* across arithmetic backends; the witness exponentiations
themselves dispatch through :mod:`repro.math.backend`, which is where
a native backend (gmpy2) makes testing large candidates fast.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import List, Optional

from repro.math import backend
from repro.math.pi import pi_times_power_of_two
from repro.math.rng import RNG, SystemRNG

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251,
)

# Jaeschke/Sorenson-Webster witness set: deterministic for all n < 3.3e24.
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
_DETERMINISTIC_LIMIT = 3_317_044_064_679_887_385_961_981


def _miller_rabin_witness(n: int, a: int, d: int, r: int) -> bool:
    """True iff ``a`` witnesses the compositeness of ``n = d*2^r + 1``."""
    x = backend.powmod(a, d, n)
    if x == 1 or x == n - 1:
        return False
    for _ in range(r - 1):
        x = backend.mulmod(x, x, n)
        if x == n - 1:
            return False
    return True


def _derived_witnesses(n: int, rounds: int) -> List[int]:
    """``rounds`` witnesses derived from SHA-256(n ‖ counter).

    Deterministic in ``n`` alone, so large-candidate testing gives one
    answer everywhere — no RNG, no backend dependence — while keeping
    the error bound of ``rounds`` independent pseudo-random bases
    (an adversarial candidate would have to be crafted against SHA-256
    itself to survive the schedule).
    """
    seed = n.to_bytes((n.bit_length() + 7) // 8, "big")
    witnesses: List[int] = []
    for counter in range(rounds):
        digest = hashlib.sha256(seed + counter.to_bytes(8, "big")).digest()
        witnesses.append(2 + int.from_bytes(digest, "big") % (n - 3))
    return witnesses


def is_prime(n: int, rng: Optional[RNG] = None, rounds: int = 40) -> bool:
    """Miller-Rabin primality test with deterministic witness schedules.

    Below ~3.3e24 the fixed Jaeschke/Sorenson-Webster set decides
    exactly; above it, ``rounds`` hash-derived witnesses keyed to ``n``
    are used.  ``rng`` is accepted for backward compatibility but no
    longer consulted — the verdict is a pure function of ``n``.
    """
    del rng  # kept for API compatibility; the schedule is deterministic
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < _DETERMINISTIC_LIMIT:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n - 1]
    else:
        witnesses = _derived_witnesses(n, rounds)
    return not any(_miller_rabin_witness(n, a, d, r) for a in witnesses)


def is_safe_prime(p: int, rng: Optional[RNG] = None) -> bool:
    """True iff both ``p`` and ``(p-1)/2`` are prime."""
    return p > 4 and p % 2 == 1 and is_prime(p, rng) and is_prime((p - 1) // 2, rng)


def next_prime(n: int, rng: Optional[RNG] = None) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate, rng):
        candidate += 2
    return candidate


def random_prime(bits: int, rng: Optional[RNG] = None) -> int:
    """A uniform ``bits``-bit prime (top bit set)."""
    if bits < 2:
        raise ValueError("need at least 2 bits for a prime")
    rng = rng or SystemRNG()
    while True:
        candidate = rng.randbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate, rng):
            return candidate


def random_safe_prime(bits: int, rng: Optional[RNG] = None) -> int:
    """A random ``bits``-bit safe prime ``p = 2q + 1``.

    Practical up to a few hundred bits in pure Python; the standardized
    MODP primes below cover the 1024/2048/3072-bit sizes the paper uses.
    """
    if bits < 4:
        raise ValueError("need at least 4 bits for a safe prime")
    rng = rng or SystemRNG()
    while True:
        q = rng.randbits(bits - 1) | (1 << (bits - 2)) | 1
        # Cheap pre-sieve on p = 2q+1 before the expensive q test.
        p = 2 * q + 1
        if any(p % s == 0 for s in _SMALL_PRIMES if p != s):
            continue
        if is_prime(q, rng) and is_prime(p, rng):
            return p


# ---------------------------------------------------------------------------
# Standardized safe primes (RFC 2409 group 2, RFC 3526 groups 14 and 15).
#
# Rather than embedding 3000-bit hex blobs, we *derive* each prime from its
# published definition  p = 2^n - 2^(n-64) - 1 + 2^64*(floor(2^(n-130)*π)+c)
# and then verify safe-primality once per process.  The (n, c) pairs are the
# only constants.
# ---------------------------------------------------------------------------

_MODP_DEFINITIONS = {
    1024: 129093,       # RFC 2409, Second Oakley Group
    2048: 124476,       # RFC 3526, group 14
    3072: 1690314,      # RFC 3526, group 15
}


@lru_cache(maxsize=None)
def modp_safe_prime(bits: int) -> int:
    """The standardized ``bits``-bit MODP safe prime, derived and verified.

    Supported sizes: 1024, 2048, 3072 (the ones the paper evaluates).
    """
    if bits not in _MODP_DEFINITIONS:
        raise ValueError(
            f"no standardized MODP prime of {bits} bits; "
            f"supported: {sorted(_MODP_DEFINITIONS)}"
        )
    offset = _MODP_DEFINITIONS[bits]
    pi_part = pi_times_power_of_two(bits - 130)
    p = (1 << bits) - (1 << (bits - 64)) - 1 + (1 << 64) * (pi_part + offset)
    if not is_safe_prime(p):
        raise ArithmeticError(f"derived {bits}-bit MODP prime failed verification")
    return p
