"""High-precision π as an integer, from scratch.

The RFC 2409 / RFC 3526 MODP primes that the paper's DL framework relies
on are *defined* in terms of the binary expansion of π:

    p = 2^n - 2^(n-64) - 1 + 2^64 * ( floor(2^(n-130) * π) + offset )

so to derive those primes without embedding magic constants we need
``floor(2^k * π)`` exactly.  We use Machin's formula

    π = 16·arctan(1/5) - 4·arctan(1/239)

evaluated in fixed-point integer arithmetic with guard bits, which is
exact, dependency-free and fast enough for k ≈ 3000.
"""

from __future__ import annotations

_GUARD_BITS = 64


def _arctan_inverse_fixed(x: int, precision_bits: int) -> int:
    """``floor(2^precision_bits * arctan(1/x))`` via the alternating series.

    arctan(1/x) = 1/x - 1/(3x^3) + 1/(5x^5) - ...
    """
    if x < 2:
        raise ValueError("series only converges quickly for x >= 2")
    one = 1 << precision_bits
    term = one // x
    total = term
    x_squared = x * x
    denominator = 3
    sign = -1
    while term:
        term //= x_squared
        total += sign * (term // denominator)
        denominator += 2
        sign = -sign
    return total


def pi_times_power_of_two(k: int) -> int:
    """Return ``floor(π * 2^k)`` exactly.

    Guard bits absorb the truncation error of the two arctan series, and
    the final value is checked against the next-coarser approximation so a
    guard-bit shortfall would raise instead of silently returning a wrong
    digit.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    precision = k + _GUARD_BITS
    pi_fixed = 16 * _arctan_inverse_fixed(5, precision) - 4 * _arctan_inverse_fixed(
        239, precision
    )
    result = pi_fixed >> _GUARD_BITS
    # Cross-check with independent extra precision: recompute with twice the
    # guard bits and compare.  Cheap relative to key generation and removes
    # any doubt about the last bit.
    precision_check = k + 2 * _GUARD_BITS
    pi_check = 16 * _arctan_inverse_fixed(5, precision_check) - 4 * _arctan_inverse_fixed(
        239, precision_check
    )
    if (pi_check >> (2 * _GUARD_BITS)) != result:
        raise ArithmeticError("π fixed-point precision check failed")
    return result
