"""Modular arithmetic helpers used throughout the crypto substrate.

All functions operate on plain Python integers (arbitrary precision) and
raise :class:`ValueError` on mathematically invalid inputs rather than
returning sentinel values.

The heavy primitives (inversion, exponentiation, Jacobi) dispatch
through :mod:`repro.math.backend`, so a native backend (gmpy2)
accelerates every caller without any of them changing; results are
identical whichever backend is active.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.math import backend


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``.

    Iterative to stay safe for multi-thousand-bit inputs.
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def mod_inverse(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``.

    Dispatches through the active arithmetic backend (CPython's
    ``pow(a, -1, m)`` on the reference path, ``gmpy2.invert`` on the
    native one).  The non-invertible case raises with a message that
    names only the modulus — ``a`` may be a secret exponent; both
    backends honour that contract.

    Raises
    ------
    ValueError
        If ``a`` is not invertible modulo ``m``.
    """
    if m <= 0:
        raise ValueError("modulus must be positive")
    return backend.invert(a % m, m)


def jacobi_symbol(a: int, n: int) -> int:
    """Jacobi symbol ``(a/n)`` for odd positive ``n``.

    For prime ``n`` this is the Legendre symbol: 1 if ``a`` is a nonzero
    quadratic residue, -1 if a non-residue, 0 if ``n`` divides ``a``.
    """
    if n <= 0 or n % 2 == 0:
        raise ValueError("n must be a positive odd integer")
    return backend.jacobi(a, n)


def is_quadratic_residue(a: int, p: int) -> bool:
    """True iff ``a`` is a nonzero quadratic residue modulo the odd prime ``p``."""
    return jacobi_symbol(a, p) == 1


def mod_sqrt(a: int, p: int) -> int:
    """Square root of ``a`` modulo an odd prime ``p`` (Tonelli-Shanks).

    Returns the root ``r`` with ``r <= p - r``; the other root is ``p - r``.

    Raises
    ------
    ValueError
        If ``a`` is a quadratic non-residue modulo ``p``.
    """
    a %= p
    if a == 0:
        return 0
    if p == 2:
        return a
    if jacobi_symbol(a, p) != 1:
        raise ValueError(f"value is not a quadratic residue modulo {p}")
    if p % 4 == 3:
        root = backend.powmod(a, (p + 1) // 4, p)
        return min(root, p - root)
    # Tonelli-Shanks for p ≡ 1 (mod 4).
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    # Any non-residue works as the seed; scan small integers deterministically.
    z = 2
    while jacobi_symbol(z, p) != -1:
        z += 1
    m = s
    c = backend.powmod(z, q, p)
    t = backend.powmod(a, q, p)
    root = backend.powmod(a, (q + 1) // 2, p)
    while t != 1:
        # Find the least i with t^(2^i) == 1.
        i = 0
        t2i = t
        while t2i != 1:
            t2i = backend.mulmod(t2i, t2i, p)
            i += 1
        b = backend.powmod(c, 1 << (m - i - 1), p)
        m = i
        c = backend.mulmod(b, b, p)
        t = backend.mulmod(t, c, p)
        root = backend.mulmod(root, b, p)
    return min(root, p - root)


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> Tuple[int, int]:
    """Chinese remaindering for two coprime moduli.

    Returns ``(r, m1*m2)`` with ``r ≡ r1 (mod m1)`` and ``r ≡ r2 (mod m2)``.
    """
    g, x, _ = egcd(m1, m2)
    if g != 1:
        raise ValueError("moduli must be coprime")
    lcm = m1 * m2
    r = (r1 + (r2 - r1) * x % m2 * m1) % lcm
    return r, lcm


def int_to_bits(value: int, width: int) -> List[int]:
    """Little-endian bit decomposition: ``bits[0]`` is the least significant bit.

    The paper writes ``[β]_B = [β^l, …, β^1]`` with ``β^1`` the low bit;
    we store index ``t-1`` of the returned list as the paper's bit ``β^t``.

    Raises
    ------
    ValueError
        If ``value`` is negative or does not fit in ``width`` bits.
    """
    if value < 0:
        raise ValueError("int_to_bits expects a non-negative integer")
    if value >> width:
        # Gains/masked values are decomposed here; report size only.
        raise ValueError(f"value does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def int_from_bits(bits: List[int]) -> int:
    """Inverse of :func:`int_to_bits` (little-endian)."""
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit at index {i} is not 0 or 1")
        value |= bit << i
    return value
