"""Arithmetic over Shamir-shared values, with exact cost accounting.

Linear operations (addition, subtraction, scalar multiplication, adding
a public constant) are local.  Multiplication follows
Gennaro-Rabin-Rabin: each party multiplies her two shares (degree
doubles to ``2t``), reshares the product with a fresh degree-``t``
polynomial, and the new share is the Lagrange-at-zero combination of the
received subshares.  That requires ``2t + 1 ≤ n``, the origin of the
``(n-1)/2`` collusion bound the paper contrasts against.

The :class:`SSContext` executes the *real algebra* for all ``n`` virtual
parties in one process and meters what the distributed protocol would
send: one communication round and ``n(n-1)`` field elements per
multiplication or opening.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.math.modular import mod_inverse
from repro.math.rng import RNG, SeededRNG
from repro.sharing.shamir import ShamirScheme, Share


@dataclass
class SSMetrics:
    """Cost of an SS protocol run, in the units of paper Section VI-B."""

    multiplications: int = 0     # multiplication-protocol invocations
    openings: int = 0
    rounds: int = 0
    field_messages: int = 0      # field elements sent party-to-party
    field_ops: int = 0           # local field multiplications (all parties)

    def record_multiplication(self, parties: int, parallel: bool) -> None:
        self.multiplications += 1
        self.field_messages += parties * (parties - 1)
        # Resharing: each party evaluates a degree-t polynomial at n points
        # (~t*n field mults) and combines n subshares (n mults).
        self.field_ops += parties * (parties * 2)
        if not parallel:
            self.rounds += 1

    def record_opening(self, parties: int, parallel: bool) -> None:
        self.openings += 1
        self.field_messages += parties * (parties - 1)
        self.field_ops += parties * parties
        if not parallel:
            self.rounds += 1

    @property
    def bits_sent(self) -> int:
        return 0  # filled in by callers that know the field size


class SSContext:
    """All-parties-in-one-process executor for secret-shared arithmetic."""

    def __init__(
        self,
        parties: int,
        prime: int,
        threshold: Optional[int] = None,
        rng: Optional[RNG] = None,
    ):
        if threshold is None:
            threshold = (parties - 1) // 2
        if 2 * threshold + 1 > parties:
            raise ValueError(
                "GRR degree reduction needs 2t+1 <= n "
                f"(got t={threshold}, n={parties})"
            )
        self.scheme = ShamirScheme(threshold, parties, prime)
        self.rng = rng or SeededRNG(0)
        self.metrics = SSMetrics()
        self._parallel_depth = 0
        self._parallel_used = False
        # Precompute the Lagrange weights for degree-2t reconstruction from
        # all n points (used by every multiplication).
        xs = list(range(1, parties + 1))
        self._lagrange_all = self.scheme.lagrange_coefficients(xs)

    @property
    def n(self) -> int:
        return self.scheme.n

    @property
    def t(self) -> int:
        return self.scheme.t

    @property
    def p(self) -> int:
        return self.scheme.p

    # -- round grouping -------------------------------------------------------------
    def parallel_round(self) -> "_ParallelRound":
        """Context manager: operations inside count as ONE communication round.

        Models protocol stages where independent multiplications/openings
        are batched into the same message exchange.
        """
        return _ParallelRound(self)

    def _charge_mult(self) -> None:
        self.metrics.record_multiplication(self.n, parallel=self._parallel_depth > 0)
        if self._parallel_depth > 0:
            self._parallel_used = True

    def _charge_open(self) -> None:
        self.metrics.record_opening(self.n, parallel=self._parallel_depth > 0)
        if self._parallel_depth > 0:
            self._parallel_used = True

    # -- values -----------------------------------------------------------------------
    def share(self, secret: int) -> "SharedValue":
        """Deal a fresh sharing of ``secret`` (input distribution round)."""
        shares = self.scheme.share(secret, self.rng)
        self.metrics.field_messages += self.n - 1
        return SharedValue(self, [share.y for share in shares])

    def constant(self, value: int) -> "SharedValue":
        """The canonical sharing of a public constant (degree-0 polynomial)."""
        return SharedValue(self, [value % self.p] * self.n)

    def open(self, value: "SharedValue") -> int:
        """Reveal a shared value to everyone."""
        self._charge_open()
        shares = [Share(x=i + 1, y=y) for i, y in enumerate(value.shares)]
        return self.scheme.reconstruct(shares)

    def multiply(self, a: "SharedValue", b: "SharedValue") -> "SharedValue":
        """GRR multiplication with degree reduction (one round)."""
        self._charge_mult()
        n, p = self.n, self.p
        # Step 1: local products — a degree-2t sharing of a*b.
        products = [a.shares[i] * b.shares[i] % p for i in range(n)]
        # Step 2: every party reshares her product with degree t.
        subshares = [self.scheme.share(products[i], self.rng) for i in range(n)]
        # Step 3: new share of party j = Σ_i λ_i · subshare_{i→j}.
        new_shares = []
        for j in range(n):
            total = 0
            for i in range(n):
                weight = self._lagrange_all[i + 1]
                total = (total + weight * subshares[i][j].y) % p
            new_shares.append(total)
        return SharedValue(self, new_shares)


class _ParallelRound:
    def __init__(self, context: SSContext):
        self.context = context

    def __enter__(self):
        if self.context._parallel_depth == 0:
            self.context._parallel_used = False
        self.context._parallel_depth += 1
        return self

    def __exit__(self, exc_type, exc, tb):
        self.context._parallel_depth -= 1
        if (
            self.context._parallel_depth == 0
            and self.context._parallel_used
            and exc_type is None
        ):
            self.context.metrics.rounds += 1
        return False


@dataclass
class SharedValue:
    """A degree-t Shamir sharing living in an :class:`SSContext`.

    ``shares[i]`` is party ``i+1``'s share.  Supports ``+``, ``-`` and
    ``*`` with other shared values and with plain integers; multiplying
    two shared values invokes the (metered) multiplication protocol.
    """

    context: SSContext
    shares: List[int] = field(default_factory=list)

    def _lift(self, other) -> "SharedValue":
        if isinstance(other, SharedValue):
            return other
        if isinstance(other, int):
            return self.context.constant(other)
        return NotImplemented

    def __add__(self, other) -> "SharedValue":
        other = self._lift(other)
        if other is NotImplemented:
            return NotImplemented
        p = self.context.p
        return SharedValue(
            self.context,
            [(a + b) % p for a, b in zip(self.shares, other.shares)],
        )

    __radd__ = __add__

    def __neg__(self) -> "SharedValue":
        p = self.context.p
        return SharedValue(self.context, [(-a) % p for a in self.shares])

    def __sub__(self, other) -> "SharedValue":
        other = self._lift(other)
        if other is NotImplemented:
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other) -> "SharedValue":
        return (-self) + other

    def __mul__(self, other) -> "SharedValue":
        if isinstance(other, int):
            p = self.context.p
            return SharedValue(self.context, [a * other % p for a in self.shares])
        if isinstance(other, SharedValue):
            return self.context.multiply(self, other)
        return NotImplemented

    def __rmul__(self, other) -> "SharedValue":
        if isinstance(other, int):
            return self * other
        return NotImplemented

    def open(self) -> int:
        return self.context.open(self)
