"""Secret-shared comparison in the Nishide-Ohta style.

Nishide and Ohta [PKC'07] compare shared values *without* full bit
decomposition by reducing comparison to LSB extractions of masked
values; the paper budgets their full protocol at ``279·l + 5``
multiplication invocations for ``l``-bit values.

We implement the same structure for the case the ranking baseline
actually needs — operands known to lie in ``[0, p/2)`` — where a single
LSB extraction suffices:

    a < b   ⟺   LSB( 2·(a − b) mod p ) = 1

because ``2(a−b) mod p`` is even when ``a ≥ b`` (no wrap) and odd when
``a < b`` (wraps past the odd ``p``).  The LSB gadget masks the operand
with a jointly random ``r`` of known shared bits, opens ``c = x + r``,
and un-masks with the shared wrap bit ``[c < r]``:

    LSB(x) = c_0 ⊕ r_0 ⊕ [c < r].

Everything here is executed for real over the shares; the paper's
``279l + 5`` figure is kept alongside (:func:`nishide_ohta_cost`) for
cost-model benches that follow the paper's accounting of the full
general-case protocol.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sharing.arithmetic import SSContext, SharedValue
from repro.sharing.randomness import random_shared_bit

#: The paper's (Section II / VI-B) cost of one full Nishide-Ohta comparison.
NISHIDE_OHTA_MULTS_PER_COMPARISON = lambda l: 279 * l + 5


def nishide_ohta_cost(bit_length: int) -> int:
    """Multiplication invocations of the full Nishide-Ohta comparison."""
    return NISHIDE_OHTA_MULTS_PER_COMPARISON(bit_length)


def xor_shared(context: SSContext, a: SharedValue, b: SharedValue) -> SharedValue:
    """``a ⊕ b = a + b − 2ab`` (one multiplication)."""
    return a + b - 2 * context.multiply(a, b)


def public_less_than_shared_bits(
    context: SSContext, c: int, bits: Sequence[SharedValue]
) -> SharedValue:
    """Sharing of ``[c < r]`` for public ``c`` and bitwise-shared ``r``.

    Scanning from the most significant bit, ``c < r`` iff at the first
    differing position the shared bit is 1 (and the public bit 0).  With
    ``d_i = r_i ⊕ c_i`` (linear — ``c_i`` is public) and suffix products
    ``e_i = Π_{v>i}(1 − d_v)``, the first-difference indicator is
    ``e_i − e_{i-1}`` — free once the ``L−1`` suffix products are paid.

    Cost: ``len(bits) − 1`` multiplications.
    """
    width = len(bits)
    if c >= (1 << width):
        return context.constant(0)
    if c < 0:
        raise ValueError("public operand must be non-negative")
    # d_i as linear expressions in the shared bits.
    d: List[SharedValue] = []
    for i in range(width):
        c_bit = (c >> i) & 1
        d.append((1 - bits[i]) if c_bit else bits[i])
    # Suffix products e_i = Π_{v>i} (1 − d_v), from the MSB down.
    e: List[SharedValue] = [context.constant(0)] * width
    e[width - 1] = context.constant(1)
    for i in range(width - 2, -1, -1):
        e[i] = context.multiply(e[i + 1], 1 - d[i + 1])
    result = context.constant(0)
    for i in range(width):
        if (c >> i) & 1:
            continue  # a difference here means r_i = 0: r loses this bit
        below = e[i - 1] if i > 0 else context.multiply(e[0], 1 - d[0])
        result = result + (e[i] - below)
    return result


def masked_random_with_bits(context: SSContext, max_attempts: int = 64):
    """A uniform shared ``r ∈ [0, p)`` with known shared bits.

    Generates ``⌈log p⌉`` shared random bits, then rejects candidates
    ``≥ p`` by opening the comparison bit ``[r < p]`` (which reveals
    nothing about an accepted ``r`` beyond ``r < p``).  Acceptance
    probability is ``p / 2^L ≥ 1/2``.
    """
    width = context.p.bit_length()
    for _ in range(max_attempts):
        bits = [random_shared_bit(context) for _ in range(width)]
        value = context.constant(0)
        for i, bit in enumerate(bits):
            value = value + bit * (1 << i)
        in_range = public_less_than_shared_bits(context, context.p - 1, bits)
        # [p-1 < r] == 0  ⟺  r ≤ p-1.
        if context.open(in_range) == 0:
            return bits, value
    raise RuntimeError("failed to sample a masked random value below p")


def lsb_of_shared(context: SSContext, x: SharedValue) -> SharedValue:
    """Sharing of the least significant bit of the shared value ``x``."""
    bits, r = masked_random_with_bits(context)
    c = context.open(x + r)
    wrap = public_less_than_shared_bits(context, c, bits)
    c0 = c & 1
    r0 = bits[0]
    partial = (1 - r0) if c0 else r0          # c_0 ⊕ r_0, linear
    return xor_shared(context, partial, wrap)  # ⊕ the wrap bit


def less_than(context: SSContext, a: SharedValue, b: SharedValue) -> SharedValue:
    """Sharing of ``[a < b]`` for shared ``a, b ∈ [0, p/2)``.

    One LSB extraction of ``2(a − b) mod p`` — the Nishide-Ohta trick
    specialized to half-range operands (which the β values always are,
    since ``2^l ≪ p``).
    """
    doubled_difference = (a - b) * 2
    return lsb_of_shared(context, doubled_difference)


def less_than_general(
    context: SSContext, a: SharedValue, b: SharedValue
) -> SharedValue:
    """Sharing of ``[a < b]`` for *arbitrary* shared ``a, b ∈ [0, p)``.

    The full Nishide-Ohta three-test structure.  With
    ``A = LSB(2a) = [a > p/2]``, ``B = LSB(2b)``, and
    ``C = LSB(2(a−b)) = [(a−b) mod p > p/2]``:

    * A=0, B=1: ``a ≤ p/2 < b`` ⇒ a < b;
    * A=1, B=0: ``a > p/2 ≥ b`` ⇒ a > b;
    * A=B (both halves): the difference stays in ``(−p/2, p/2)``, so
      the half-range rule applies: a < b ⇔ C = 1.

    Hence ``[a < b] = (1−A)·B + (1 − A⊕B)·C`` — three LSB extractions
    plus three multiplications, i.e. ~3× the half-range cost (the
    paper's 279l+5 figure budgets this general protocol).
    """
    lsb_2a = lsb_of_shared(context, a * 2)
    lsb_2b = lsb_of_shared(context, b * 2)
    lsb_diff = lsb_of_shared(context, (a - b) * 2)
    a_low_b_high = context.multiply(1 - lsb_2a, lsb_2b)
    same_half = 1 - xor_shared(context, lsb_2a, lsb_2b)
    return a_low_b_high + context.multiply(same_half, lsb_diff)


def equals(context: SSContext, a: SharedValue, b: SharedValue) -> SharedValue:
    """Sharing of ``[a == b]`` for ``a, b ∈ [0, p/2)``.

    ``1 − [a<b] − [b<a]`` — two comparisons; exactly one of the three
    indicator bits is set.
    """
    below = less_than(context, a, b)
    above = less_than(context, b, a)
    return 1 - below - above


def interval_test(
    context: SSContext, x: SharedValue, low: int, high: int
) -> SharedValue:
    """Sharing of ``[low ≤ x < high]`` for public bounds and shared
    ``x ∈ [0, p/2)`` (with ``0 ≤ low < high ≤ p/2``).

    ``[x < high] · (1 − [x < low])`` — the interval-membership gadget
    the Nishide-Ohta construction composes its tests from.
    """
    if not 0 <= low < high <= context.p // 2:
        raise ValueError("need 0 <= low < high <= p/2")
    below_high = less_than(context, x, context.constant(high))
    if low == 0:
        return below_high
    below_low = less_than(context, x, context.constant(low))
    return context.multiply(below_high, 1 - below_low)
