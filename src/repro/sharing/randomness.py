"""Jointly random shared values and bits.

* A **random shared value** is the sum of one random contribution per
  party — uniform and unknown to any coalition missing a contributor.
* A **random shared bit** follows the classic Damgård et al. square-root
  trick: share a random ``r``, open ``r²``; if non-zero, ``r / sqrt(r²)``
  is ±1 uniformly, so ``(r/s + 1)/2`` is a uniform shared bit at the
  cost of one multiplication and one opening.

These are the building blocks of the comparison protocol (and the reason
its cost is dominated by ``O(l)`` multiplication invocations).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.math.modular import mod_inverse, mod_sqrt
from repro.sharing.arithmetic import SSContext, SharedValue


def random_shared_value(context: SSContext) -> SharedValue:
    """A uniformly random shared field element (one sharing per party).

    Communication: each party deals one sharing; all are summed locally.
    """
    total = context.constant(0)
    for _ in range(context.n):
        contribution = context.share(context.rng.randrange(context.p))
        total = total + contribution
    return total


def random_shared_bit(context: SSContext, max_attempts: int = 128) -> SharedValue:
    """A uniform shared bit, unknown to everyone (1 mult + 1 open per try)."""
    inv2 = mod_inverse(2, context.p)
    for _ in range(max_attempts):
        r = random_shared_value(context)
        r_squared = context.open(context.multiply(r, r))
        if r_squared == 0:
            continue  # probability 1/p
        root = mod_sqrt(r_squared, context.p)
        # Both roots are valid; fix the smaller one as the public convention.
        sign = r * mod_inverse(root, context.p)      # shared ±1
        return (sign + 1) * inv2
    raise RuntimeError("failed to generate a random shared bit (astronomically unlikely)")


def random_shared_bits(
    context: SSContext, width: int
) -> Tuple[List[SharedValue], SharedValue]:
    """``width`` random shared bits plus the shared value ``Σ 2^i·b_i``.

    Used to mask a secret before opening it (the LSB/compare gadget).
    Rejects combinations that could overflow the field: requires
    ``2^width < p``.
    """
    if (1 << width) >= context.p:
        raise ValueError("bit width too large for the field")
    bits = [random_shared_bit(context) for _ in range(width)]
    value = context.constant(0)
    for i, bit in enumerate(bits):
        value = value + bit * (1 << i)
    return bits, value
