"""The SS baseline as real message-passing parties on the engine.

:mod:`repro.sharing.arithmetic` executes the secret-sharing algebra for
all virtual parties in one process (fast, exact cost accounting).  This
module complements it with a *genuinely distributed* execution: ``n``
:class:`SSParty` objects exchange shares over the runtime engine, so the
transcript/round accounting of the SS framework comes from the same
machinery as the main framework's, and the two baselines can be
compared end to end (``tests/test_sharing_protocol.py`` checks the
distributed run agrees with the one-process context).

Implemented sub-protocols, each as engine messages:

* input sharing (the dealer sends one share per party);
* GRR multiplication (local product, reshare, Lagrange-combine —
  one communication round of ``n(n-1)`` share messages);
* opening (everyone broadcasts her share);
* the rank protocol: each party inputs a value; everyone learns her own
  *competition rank* via pairwise shared comparisons — the SS
  counterpart of the paper's framework, which (unlike it) reveals every
  pairwise comparison outcome to all parties when the bits are opened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Union

from repro.math.modular import mod_inverse, mod_sqrt
from repro.math.rng import RNG, SeededRNG
from repro.runtime.engine import Engine
from repro.runtime.errors import ProtocolAbort, ProtocolError
from repro.runtime.faults import FaultInjector, FaultSpec
from repro.runtime.party import Party
from repro.runtime.supervisor import Supervisor
from repro.runtime.transcript import Transcript
from repro.sharing.shamir import ShamirScheme, Share

TAG_INPUT_SHARE = "ss-input"
TAG_RESHARE = "ss-reshare"
TAG_OPEN = "ss-open"


def ss_phase_of(tag: str) -> str:
    """Collapse sequence-numbered SS tags to their sub-protocol name.

    ``ss-reshare-17`` → ``ss-reshare`` and so on, so blame reports name
    the sub-protocol rather than an opaque sequence number."""
    for base in (TAG_RESHARE, TAG_OPEN, TAG_INPUT_SHARE):
        if tag.startswith(base):
            return base
    return tag


class SSParty(Party):
    """One party of a distributed Shamir computation.

    Subclasses implement :meth:`compute` as a generator (like
    :meth:`Party.protocol`) using the share-level helpers below; this
    base class handles the field/threshold bookkeeping.
    """

    def __init__(self, party_id: int, n: int, prime: int, rng: RNG,
                 threshold: Optional[int] = None):
        if not 1 <= party_id <= n:
            raise ValueError("SS party ids run from 1 to n")
        super().__init__(party_id, rng)
        threshold = (n - 1) // 2 if threshold is None else threshold
        self.scheme = ShamirScheme(threshold, n, prime)
        self.n = n
        self.p = prime
        self._field_bits = prime.bit_length()
        xs = list(range(1, n + 1))
        self._lagrange = self.scheme.lagrange_coefficients(xs)
        self._sequence = 0

    @property
    def _others(self) -> List[int]:
        return [j for j in range(1, self.n + 1) if j != self.party_id]

    def _next_tag(self, base: str) -> str:
        self._sequence += 1
        return f"{base}-{self._sequence}"

    # -- sub-protocols -----------------------------------------------------------
    def deal_input(self, secret: int, tag: str):
        """Dealer side: share ``secret``; returns own share value."""
        shares = self.scheme.share(secret, self.rng)
        for share in shares:
            if share.x == self.party_id:
                own = share.y
            else:
                self.send(share.x, tag, share.y, size_bits=self._field_bits)
        return own

    def _require_field_value(self, value, sender: int, tag: str) -> int:
        """Validated-abort check: any share leaving the field blames its
        sender (a corrupted wire value must never enter the algebra)."""
        if not isinstance(value, int) or isinstance(value, bool) \
                or not 0 <= value < self.p:
            raise ProtocolAbort(
                f"P{sender} sent an out-of-field share",
                blamed=sender, phase=ss_phase_of(tag),
            )
        return value

    def receive_input(self, dealer: int, tag: str) -> Generator:
        message = yield from self.recv(dealer, tag)
        return self._require_field_value(message.payload, dealer, tag)

    def multiply(self, my_share_a: int, my_share_b: int) -> Generator:
        """GRR multiplication: returns this party's share of ``a·b``.

        All parties must call this in the same order (tags are sequence-
        numbered per sender so concurrent multiplications don't collide).
        """
        tag = self._next_tag(TAG_RESHARE)
        product = my_share_a * my_share_b % self.p
        subshares = self.scheme.share(product, self.rng)
        own_subshare = 0
        for share in subshares:
            if share.x == self.party_id:
                own_subshare = share.y
            else:
                self.send(share.x, tag, share.y, size_bits=self._field_bits)
        received = yield from self.recv_from_all(self._others, tag)
        total = self._lagrange[self.party_id] * own_subshare % self.p
        for sender, subshare in received.items():
            self._require_field_value(subshare, sender, tag)
            total = (total + self._lagrange[sender] * subshare) % self.p
        return total

    def open(self, my_share: int) -> Generator:
        """Broadcast shares; reconstruct the value (all parties learn it)."""
        tag = self._next_tag(TAG_OPEN)
        self.broadcast(self._others, tag, my_share, size_bits=self._field_bits)
        received = yield from self.recv_from_all(self._others, tag)
        shares = [Share(x=self.party_id, y=my_share)] + [
            Share(x=sender, y=self._require_field_value(value, sender, tag))
            for sender, value in sorted(received.items())
        ]
        return self.scheme.reconstruct(shares)

    # -- derived gadgets -----------------------------------------------------------
    def random_shared(self) -> Generator:
        """Jointly random shared value: everyone deals, shares are summed."""
        tag = self._next_tag(TAG_INPUT_SHARE) + "-rand"
        contribution = self.rng.randrange(self.p)
        own = self.deal_input(contribution, tag)
        received = yield from self.recv_from_all(self._others, tag)
        total = own
        for sender, value in received.items():
            self._require_field_value(value, sender, tag)
            total = (total + value) % self.p
        return total

    def random_shared_bit(self, max_attempts: int = 64) -> Generator:
        """The r²-trick random bit, distributed (1 mult + 1 open per try)."""
        inv2 = mod_inverse(2, self.p)
        for _ in range(max_attempts):
            r = yield from self.random_shared()
            r_squared_share = yield from self.multiply(r, r)
            r_squared = yield from self.open(r_squared_share)
            if r_squared == 0:
                continue
            root = mod_sqrt(r_squared, self.p)
            sign_share = r * mod_inverse(root, self.p) % self.p
            return (sign_share + 1) * inv2 % self.p
        raise ProtocolError("random bit generation failed repeatedly")

    def compare_less_than(self, share_a: int, share_b: int, width: int) -> Generator:
        """Shared bit ``[a < b]`` for ``a, b < p/2`` — the LSB gadget,
        distributed.  ``width`` must be ``⌈log p⌉``."""
        doubled = (share_a - share_b) * 2 % self.p
        result = yield from self._lsb(doubled, width)
        return result

    def _lsb(self, share_x: int, width: int) -> Generator:
        bits: List[int] = []
        while True:
            bits = []
            for _ in range(width):
                bit = yield from self.random_shared_bit()
                bits.append(bit)
            value = 0
            for index, bit in enumerate(bits):
                value = (value + (1 << index) * bit) % self.p
            in_range = yield from self._public_lt_bits(self.p - 1, bits)
            opened = yield from self.open(in_range)
            if opened == 0:
                break
        masked = yield from self.open((share_x + value) % self.p)
        wrap = yield from self._public_lt_bits(masked, bits)
        c0 = masked & 1
        partial = ((1 - bits[0]) if c0 else bits[0]) % self.p
        # XOR with the wrap bit: one multiplication.
        product = yield from self.multiply(partial, wrap)
        return (partial + wrap - 2 * product) % self.p

    def _public_lt_bits(self, c: int, bit_shares: List[int]) -> Generator:
        """Shared ``[c < r]`` for public c, bitwise-shared r (suffix products)."""
        width = len(bit_shares)
        if c >= (1 << width):
            return 0
        d = [
            (1 - bit_shares[i]) % self.p if (c >> i) & 1 else bit_shares[i]
            for i in range(width)
        ]
        e = [0] * width
        e[width - 1] = 1
        for i in range(width - 2, -1, -1):
            e[i] = yield from self.multiply(e[i + 1], (1 - d[i + 1]) % self.p)
        lowest = yield from self.multiply(e[0], (1 - d[0]) % self.p)
        result = 0
        for i in range(width):
            if (c >> i) & 1:
                continue
            below = e[i - 1] if i > 0 else lowest
            result = (result + e[i] - below) % self.p
        return result


class SSRankParty(SSParty):
    """The SS-framework baseline behaviour: learn my competition rank.

    Every party inputs her value; for every ordered pair the parties
    compute the shared comparison bit and *open it to everyone* — the
    information leak (all pairwise outcomes public) that motivates the
    paper's identity-unlinkable design.
    """

    def __init__(self, party_id: int, n: int, prime: int, value: int, rng: RNG):
        super().__init__(party_id, n, prime, rng)
        if not 0 <= value < prime // 2:
            raise ValueError("values must lie in [0, p/2)")
        self.value = value
        self.rank: Optional[int] = None

    def protocol(self):
        width = self.p.bit_length()
        # 1. Everyone deals her input.
        tag = "ss-rank-input"
        own_share = self.deal_input(self.value, tag)
        shares: Dict[int, int] = {self.party_id: own_share}
        received = yield from self.recv_from_all(self._others, tag)
        for sender, value in received.items():
            self._require_field_value(value, sender, tag)
        shares.update(received)
        # 2. Pairwise comparisons, opened to everyone: [v_i < v_j], and —
        # when that is 0 — the reverse [v_j < v_i] to separate "greater"
        # from "equal".  The opened bit is public, so every party takes
        # the same branch (interactive sub-protocols need lockstep).
        greater_than_me = 0
        for i in range(1, self.n + 1):
            for j in range(i + 1, self.n + 1):
                bit_share = yield from self.compare_less_than(
                    shares[i], shares[j], width
                )
                i_below_j = yield from self.open(bit_share)
                if i_below_j not in (0, 1):
                    raise ProtocolError("comparison opened to a non-bit")
                if i_below_j == 1:
                    j_below_i = 0
                else:
                    reverse_share = yield from self.compare_less_than(
                        shares[j], shares[i], width
                    )
                    j_below_i = yield from self.open(reverse_share)
                if i == self.party_id and i_below_j == 1:
                    greater_than_me += 1
                if j == self.party_id and j_below_i == 1:
                    greater_than_me += 1
        self.rank = greater_than_me + 1
        self.output = self.rank


@dataclass
class DistributedSSRun:
    """Results of an engine-based SS rank computation."""

    ranks: Dict[int, int]
    rounds: int
    transcript: Transcript


def run_distributed_ss_ranking(
    values: List[int], prime: int, rng: Optional[RNG] = None,
    *,
    faults: Union[FaultInjector, Sequence[FaultSpec], None] = None,
    timeout_rounds: Optional[int] = None,
    max_retries: int = 2,
) -> DistributedSSRun:
    """Engine-based SS ranking of ``values`` (party ``i+1`` holds
    ``values[i]``).

    ``faults`` injects a deterministic fault plan exactly as the main
    framework does; any injection (or an explicit ``timeout_rounds``)
    also installs a :class:`Supervisor`, so a faulty run terminates in a
    typed, blamed error or heals via retransmission — never a bare
    deadlock.  The SS baseline has no dropout recovery (the paper's
    comparison point is the protocol itself, not a fault-tolerance
    layer), so blame always propagates to the caller."""
    rng = rng or SeededRNG(0)
    n = len(values)
    injector = faults
    if injector is not None and not isinstance(injector, FaultInjector):
        fork = getattr(rng, "fork", None)
        fault_rng = fork("ss-faults") if callable(fork) else rng
        injector = FaultInjector(list(injector), rng=fault_rng, phase_of=ss_phase_of)
    supervisor = None
    if injector is not None or timeout_rounds is not None:
        supervisor = Supervisor(
            timeout_rounds=timeout_rounds if timeout_rounds is not None else 4,
            max_retries=max_retries,
            phase_of=ss_phase_of,
        )
    engine = Engine(faults=injector, supervisor=supervisor)
    for party_id, value in enumerate(values, start=1):
        fork = getattr(rng, "fork", None)
        party_rng = fork(f"ss{party_id}") if callable(fork) else rng
        engine.add_party(SSRankParty(party_id, n, prime, value, party_rng))
    outputs = engine.run()
    return DistributedSSRun(
        ranks=dict(sorted(outputs.items())),
        rounds=engine.transcript.rounds,
        transcript=engine.transcript,
    )
