"""Shamir (t, n) secret sharing over a prime field.

A secret ``s`` is the constant term of a random degree-``t`` polynomial;
party ``i`` (1-indexed) holds the evaluation at ``x = i``.  Any ``t+1``
shares reconstruct; ``t`` shares are information-theoretically
independent of the secret.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.math import backend
from repro.math.modular import mod_inverse
from repro.math.rng import RNG


@dataclass(frozen=True)
class Share:
    """One party's share: the evaluation point and value."""

    x: int
    y: int = field(repr=False)  # repro: secret


class ShamirScheme:
    """Sharing/reconstruction machinery for fixed ``(threshold, parties, prime)``.

    ``threshold`` is the polynomial degree ``t``: up to ``t`` colluding
    parties learn nothing; ``t+1`` reconstruct.
    """

    def __init__(self, threshold: int, parties: int, prime: int):
        if parties < 2:
            raise ValueError("need at least two parties")
        if not 1 <= threshold < parties:
            raise ValueError("threshold must satisfy 1 <= t < n")
        if prime <= parties:
            raise ValueError("field must be larger than the party count")
        self.t = threshold
        self.n = parties
        self.p = prime

    # -- sharing -----------------------------------------------------------------
    def share(self, secret: int, rng: RNG, degree: int = None) -> List[Share]:
        """Share ``secret`` with a random polynomial of the given degree."""
        degree = self.t if degree is None else degree
        coefficients = [secret % self.p] + [
            rng.randrange(self.p) for _ in range(degree)
        ]
        return [
            Share(x=i, y=self._eval_poly(coefficients, i)) for i in range(1, self.n + 1)
        ]

    def _eval_poly(self, coefficients: Sequence[int], x: int) -> int:
        # Horner over the backend seam: the multiply is the whole cost
        # at cryptographic field sizes.
        result = 0
        for coefficient in reversed(coefficients):
            result = (backend.mulmod(result, x, self.p) + coefficient) % self.p
        return result

    # -- reconstruction ------------------------------------------------------------
    def reconstruct(self, shares: Sequence[Share], degree: int = None) -> int:
        """Lagrange interpolation at 0 from at least ``degree+1`` shares."""
        degree = self.t if degree is None else degree
        if len(shares) < degree + 1:
            raise ValueError(
                f"need {degree + 1} shares to reconstruct a degree-{degree} sharing, "
                f"got {len(shares)}"
            )
        points = shares[: degree + 1]
        xs = [share.x for share in points]
        if len(set(xs)) != len(xs):
            raise ValueError("duplicate evaluation points")
        secret = 0
        for i, share in enumerate(points):
            secret = (
                secret + backend.mulmod(share.y, self._lagrange_at_zero(xs, i), self.p)
            ) % self.p
        return secret

    def _lagrange_at_zero(self, xs: Sequence[int], index: int) -> int:
        """Lagrange basis coefficient ``λ_index`` evaluated at x = 0."""
        numerator, denominator = 1, 1
        xi = xs[index]
        for j, xj in enumerate(xs):
            if j == index:
                continue
            numerator = backend.mulmod(numerator, -xj, self.p)
            denominator = backend.mulmod(denominator, xi - xj, self.p)
        return backend.mulmod(numerator, mod_inverse(denominator, self.p), self.p)

    def lagrange_coefficients(self, xs: Sequence[int]) -> Dict[int, int]:
        """All basis coefficients at 0 for the given evaluation points."""
        return {
            xs[i]: self._lagrange_at_zero(list(xs), i) for i in range(len(xs))
        }
