"""Secret-sharing substrate for the paper's baseline ("SS framework").

The paper compares its framework against SMP sorting built from
secret-sharing primitives: Shamir (t, n) sharing, Gennaro-Rabin-Rabin
multiplication with degree reduction, shared random bits, and a
comparison protocol in the Nishide-Ohta style (their full protocol costs
``279l + 5`` multiplication invocations; we implement a real working
LSB-based comparison with the same structure and keep the paper's cost
accounting in :mod:`repro.analysis.complexity`).

All algebra here is the real thing — shares are actual field elements,
multiplication actually reshards and recombines — executed in one
process with exact communication accounting (each multiplication is one
round of ``n(n-1)`` field-element messages, exactly what the real
protocol sends).
"""

from repro.sharing.protocol import (
    DistributedSSRun,
    SSParty,
    SSRankParty,
    run_distributed_ss_ranking,
)
from repro.sharing.shamir import Share, ShamirScheme
from repro.sharing.arithmetic import SharedValue, SSContext, SSMetrics
from repro.sharing.randomness import random_shared_bit, random_shared_bits, random_shared_value
from repro.sharing.comparison import (
    NISHIDE_OHTA_MULTS_PER_COMPARISON,
    equals,
    interval_test,
    less_than,
    less_than_general,
    lsb_of_shared,
    public_less_than_shared_bits,
    nishide_ohta_cost,
)

__all__ = [
    "DistributedSSRun",
    "NISHIDE_OHTA_MULTS_PER_COMPARISON",
    "SSParty",
    "SSRankParty",
    "run_distributed_ss_ranking",
    "SSContext",
    "SSMetrics",
    "ShamirScheme",
    "Share",
    "SharedValue",
    "equals",
    "interval_test",
    "less_than",
    "less_than_general",
    "lsb_of_shared",
    "nishide_ohta_cost",
    "public_less_than_shared_bits",
    "random_shared_bit",
    "random_shared_bits",
    "random_shared_value",
]
