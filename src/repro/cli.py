"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — run the full framework on synthetic inputs and print the
  ranking, the initiator's selection, and the protocol costs.
* ``games`` — run the executable security games (IND-CPA + both
  framework ablation attacks) and print advantages.
* ``netsim`` — run the framework, replay its transcript over the paper's
  topology, and print the communication timing.
* ``curves`` — verify and list the bundled group parameters.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.framework import FrameworkConfig, GroupRankingFramework
from repro.core.gain import AttributeSchema, InitiatorInput, ParticipantInput
from repro.math.rng import SeededRNG


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy Preserving Group Ranking (ICDCS 2012) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the framework on synthetic inputs")
    demo.add_argument("-n", "--participants", type=int, default=6)
    demo.add_argument("-k", "--top", type=int, default=2)
    demo.add_argument("-m", "--attributes", type=int, default=4)
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument("--group", choices=["test", "secp160r1", "dl1024"],
                      default="test")
    demo.add_argument("--zkp", choices=["interactive", "fiat-shamir"],
                      default="interactive")
    demo.add_argument("--batch-verify", action="store_true",
                      help="fold proof checks into one multi-exponentiation")
    demo.add_argument("--bit-proofs", action="store_true",
                      help="publish per-bit validity proofs (malicious model)")
    demo.add_argument("--shard-size", default="0", metavar="S",
                      help="hierarchical mode: run phase 2 in shards of ~S "
                           "members plus a champion-aggregation round "
                           "(0 = flat protocol; 'auto' picks the "
                           "crossover-model optimum for this n and l)")
    demo.add_argument("--transport", choices=["inproc", "tcp"],
                      default="inproc",
                      help="inproc runs the lockstep engine in this process; "
                           "tcp spawns one OS process per party over asyncio "
                           "loopback sockets (same values and op counts, "
                           "real wall-clock overlap)")
    demo.add_argument("--listen", default=None, metavar="HOST:PORT",
                      help="with --transport tcp: coordinator bind address "
                           "(default 127.0.0.1 with an ephemeral port)")
    demo.add_argument("--streaming", action="store_true",
                      help="pipeline the shuffle chain in chunks")
    demo.add_argument("--chunk-sets", type=int, default=1, metavar="C",
                      help="ciphertext sets per streamed chunk (with --streaming)")
    _add_wire_flags(demo)
    _add_backend_flag(demo)
    _add_checkpoint_flags(demo)

    games = sub.add_parser("games", help="run the security games")
    games.add_argument("--trials", type=int, default=16)

    netsim = sub.add_parser("netsim", help="replay a run over the paper network")
    netsim.add_argument("-n", "--participants", type=int, default=6)
    netsim.add_argument("--seed", type=int, default=1)
    netsim.add_argument("--shard-size", default="0", metavar="S",
                        help="hierarchical mode: shard phase 2 into groups "
                             "of ~S members (0 = flat protocol, 'auto' = "
                             "crossover-model optimum)")
    _add_wire_flags(netsim)
    _add_backend_flag(netsim)
    _add_checkpoint_flags(netsim)

    sub.add_parser("curves", help="verify and list bundled group parameters")

    sub.add_parser("report", help="print all recorded benchmark results")

    serve = sub.add_parser(
        "serve-party",
        help="host one protocol party for a tcp-transport run (spawned by "
             "the coordinator; exits when the run ends)",
    )
    serve.add_argument("--connect", required=True, metavar="HOST:PORT",
                       help="coordinator address to dial")
    serve.add_argument("--party-id", type=int, required=True,
                       help="party to host (0 = initiator)")
    serve.add_argument("--incarnation", type=int, default=0,
                       help="rejoin generation (0 = first life; set by the "
                            "coordinator on kill-and-rejoin respawns)")

    plan = sub.add_parser("plan", help="estimate a deployment's cost at scale")
    plan.add_argument("-n", "--participants", type=int, default=25)
    plan.add_argument("-m", "--attributes", type=int, default=10)
    plan.add_argument("--family", choices=["DL", "ECC"], default="ECC")
    plan.add_argument("--level", type=int, choices=[80, 112, 128], default=80)
    plan.add_argument("--network", action="store_true",
                      help="include network time on the reference topology")
    return parser


def _add_backend_flag(command: argparse.ArgumentParser) -> None:
    from repro.math import backend as arith_backend

    command.add_argument(
        "--backend", choices=arith_backend.backend_choices(), default="auto",
        help="arithmetic backend: auto (default; gmpy2 when installed, else "
             "pure python), python, or gmpy2 — transcript-equivalent, "
             "changes speed only",
    )


def _add_checkpoint_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist durable per-party protocol state (encrypted at "
             "rest) under DIR; enables kill-and-rejoin recovery and "
             "--resume",
    )
    command.add_argument(
        "--resume", action="store_true",
        help="resume a run whose process died, from the durable state "
             "in --checkpoint-dir (phase-1 work is not redone when "
             "every participant's β survived)",
    )


def _add_wire_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--wire", choices=["declared", "measured", "conformance"],
        default="declared",
        help="communication accounting: declared analytic sizes, measured "
             "encoded bytes, or measured with a declared-vs-measured "
             "cross-check",
    )
    command.add_argument("--wire-codec", choices=["v1", "v2"], default="v2",
                         help="wire format (v2 = varint framing + interning)")
    command.add_argument("--coalesce", dest="coalesce", action="store_true",
                         default=True,
                         help="batch per-(sender,receiver,round) messages "
                              "into one framed envelope (default)")
    command.add_argument("--no-coalesce", dest="coalesce", action="store_false",
                         help="one wire message per protocol datum")


def _print_wire_stats(result, out) -> None:
    stats = result.wire_stats
    if stats is None:
        return
    print(f"wire: codec={stats.codec} coalesce={stats.coalesce} "
          f"mode={stats.mode}   {stats.wire_messages} wire messages / "
          f"{stats.logical_messages} logical   "
          f"{stats.wire_bytes / 1e6:.3f} MB on the wire", file=out)
    # The canonical digest hashes per-channel payload streams, so it is
    # identical between in-process and tcp-transport runs.
    print(f"wire digest: {stats.canonical_digest[:16]}…", file=out)


def _resolve_shard_size(value, n: int, k: int, schema, rho_bits: int,
                        group) -> int:
    """Parse a ``--shard-size`` value; ``auto`` asks the crossover model."""
    text = str(value).strip().lower()
    if text != "auto":
        return int(text)
    from repro.analysis.symbolic import suggest_shard_size
    from repro.core.gain import beta_bit_length

    l = beta_bit_length(
        schema.dimension, schema.value_bits, schema.weight_bits, rho_bits,
        mode="safe",
    )
    return suggest_shard_size(
        n, l, k=k,
        lambda_bits=group.order.bit_length(),
        ciphertext_bits=2 * group.element_bits,
    )


def _make_group(name: str):
    from repro.groups.params import make_dl_group, make_ecc_group, make_test_group

    if name == "test":
        return make_test_group()
    if name == "secp160r1":
        return make_ecc_group("secp160r1")
    if name == "dl1024":
        return make_dl_group(1024)
    raise ValueError(name)


def _synthetic_instance(n: int, m: int, seed: int):
    rng = SeededRNG(seed)
    schema = AttributeSchema(
        names=tuple(f"attr{i}" for i in range(m)),
        num_equal=m // 2,
        value_bits=6,
        weight_bits=4,
    )
    initiator = InitiatorInput.create(
        schema,
        [rng.randrange(64) for _ in range(m)],
        [rng.randrange(16) for _ in range(m)],
    )
    participants = [
        ParticipantInput.create(schema, [rng.randrange(64) for _ in range(m)])
        for _ in range(n)
    ]
    return schema, initiator, participants


def cmd_demo(args, out) -> int:
    schema, initiator, participants = _synthetic_instance(
        args.participants, args.attributes, args.seed
    )
    group = _make_group(args.group)
    shard_size = _resolve_shard_size(
        args.shard_size, args.participants, args.top, schema, 8, group
    )
    if str(args.shard_size).strip().lower() == "auto":
        print(f"shard-size auto: crossover model suggests "
              f"{shard_size or 'flat (0)'} for n={args.participants}",
              file=out)
    config = FrameworkConfig(
        group=group,
        schema=schema,
        num_participants=args.participants,
        k=args.top,
        rho_bits=8,
        zkp_mode=args.zkp,
        batch_verify=args.batch_verify,
        bit_proofs=args.bit_proofs,
        streaming=args.streaming,
        stream_chunk_sets=args.chunk_sets,
        wire=args.wire,
        wire_codec=args.wire_codec,
        coalesce=args.coalesce,
        backend=args.backend,
        checkpoint_dir=args.checkpoint_dir,
        shard_size=shard_size,
        transport=args.transport,
    )
    framework = GroupRankingFramework(
        config, initiator, participants, rng=SeededRNG(args.seed)
    )
    try:
        result = _run_framework(framework, args)
    except KeyboardInterrupt:
        print("interrupted — parties checkpointed and sockets closed",
              file=out)
        return 130
    flags = [name for name, on in (
        ("batch-verify", args.batch_verify), ("bit-proofs", args.bit_proofs),
        ("streaming", args.streaming),
    ) if on]
    from repro.math import backend as arith_backend

    ran_backend = (arith_backend.active_backend_name()
                   if args.backend == "auto" else args.backend)
    print(f"group: {config.group.name}   n={args.participants}  k={args.top}  "
          f"l={config.beta_bits} bits  zkp={args.zkp}  backend={ran_backend}"
          + (f"  [{' '.join(flags)}]" if flags else ""), file=out)
    if getattr(result, "shard_sizes", None):
        print(f"shards: {result.shard_sizes} "
              f"(candidates: {result.candidates}, "
              f"aggregation: {result.aggregation_bits / 8e6:.2f} MB over "
              f"{result.aggregation_rounds} SS rounds)", file=out)
        print("ranks (exact for top-k, lower bounds below):",
              dict(sorted(result.ranks.items())), file=out)
    else:
        print("ranks:", dict(sorted(result.ranks.items())), file=out)
    print("selected:", result.selected_ids(),
          f"(verified: {result.initiator_output.verified})", file=out)
    print(f"rounds: {result.rounds}   messages: {len(result.transcript)}   "
          f"traffic: {result.transcript.total_bits / 8e6:.2f} MB", file=out)
    _print_wire_stats(result, out)
    print(f"max participant group-mults: "
          f"{result.max_participant_multiplications():,}", file=out)
    problems = framework.check_result(result)
    print("consistency:", "OK" if not problems else problems, file=out)
    return 0 if not problems else 1


def _run_framework(framework, args):
    """Run honoring the demo's transport flags (``--listen`` needs the
    coordinator entrypoint directly; everything else goes through
    ``framework.run``)."""
    listen = getattr(args, "listen", None)
    if getattr(args, "transport", "inproc") == "tcp" and listen:
        from repro.runtime.transport import TransportSettings
        from repro.runtime.transport.coordinator import run_distributed

        host, sep, port = listen.rpartition(":")
        if not sep:
            raise SystemExit(f"--listen expects HOST:PORT, got {listen!r}")
        settings = TransportSettings(
            host=host or "127.0.0.1", port=int(port or 0)
        )
        return run_distributed(
            framework, resume=args.resume, settings=settings
        )
    return framework.run(resume=args.resume)


def cmd_serve_party(args, out) -> int:
    from repro.runtime.transport import serve_party

    return serve_party(
        args.connect, args.party_id, incarnation=args.incarnation
    )


def cmd_games(args, out) -> int:
    from repro.analysis.games import (
        FrameworkGame, broken_encryptor_factory, estimate_advantage,
        ind_cpa_game, tau_dictionary_attack, zero_position_attack,
    )
    from repro.groups.params import make_test_group

    group = make_test_group(40)
    print("IND-CPA (honest):",
          f"{ind_cpa_game(group, trials=args.trials * 2, rng=SeededRNG(1)):+.3f}",
          file=out)
    print("IND-CPA (broken encryptor):",
          f"{ind_cpa_game(group, encryptor=broken_encryptor_factory(), trials=args.trials, rng=SeededRNG(2)):+.3f}",
          file=out)

    schema = AttributeSchema(names=("a", "b", "c"), num_equal=1,
                             value_bits=5, weight_bits=3)
    initiator = InitiatorInput.create(schema, [10, 0, 0], [2, 3, 1])

    def advantage(attack, **flags):
        game = FrameworkGame(
            schema=schema, initiator_input=initiator,
            adversary_inputs={
                2: ParticipantInput.create(schema, [9, 5, 0]),
                3: ParticipantInput.create(schema, [12, 30, 31]),
            },
            honest_ids=[1],
            candidates=(
                ParticipantInput.create(schema, [10, 4, 2]),
                ParticipantInput.create(schema, [10, 31, 19]),
            ),
            **flags,
        )
        counter = [0]

        def trial(b, rng):
            counter[0] += 1
            framework, _ = game.run(b, seed=counter[0])
            return attack(game, framework, adversary_id=2, honest_id=1, rng=rng)

        return estimate_advantage(trial, args.trials, SeededRNG(9))

    print("gain hiding / zero-position (full):",
          f"{advantage(zero_position_attack):+.3f}", file=out)
    print("gain hiding / zero-position (no permute):",
          f"{advantage(zero_position_attack, permute=False):+.3f}", file=out)
    print("gain hiding / tau-dictionary (full):",
          f"{advantage(tau_dictionary_attack):+.3f}", file=out)
    print("gain hiding / tau-dictionary (no rerandomize):",
          f"{advantage(tau_dictionary_attack, rerandomize=False):+.3f}", file=out)
    return 0


def cmd_netsim(args, out) -> int:
    from repro.groups.params import make_test_group
    from repro.netsim import paper_topology, replay_transcript

    schema, initiator, participants = _synthetic_instance(
        args.participants, 4, args.seed
    )
    group = make_test_group()
    config = FrameworkConfig(
        group=group, schema=schema,
        num_participants=args.participants, k=2, rho_bits=8,
        wire=args.wire, wire_codec=args.wire_codec, coalesce=args.coalesce,
        backend=args.backend, checkpoint_dir=args.checkpoint_dir,
        shard_size=_resolve_shard_size(
            args.shard_size, args.participants, 2, schema, 8, group
        ),
    )
    framework = GroupRankingFramework(
        config, initiator, participants, rng=SeededRNG(args.seed)
    )
    result = framework.run(resume=args.resume)
    topology = paper_topology(SeededRNG(args.seed))
    topology.place_parties(list(range(args.participants + 1)), SeededRNG(args.seed + 1))
    replay = replay_transcript(result.transcript, topology)
    print(f"topology: {topology.node_count} nodes / {topology.edge_count} edges",
          file=out)
    print(f"communication time: {replay.total_time_s:.2f} s over "
          f"{replay.rounds} rounds ({replay.total_bytes / 1e6:.2f} MB, "
          f"{replay.wire_messages} wire messages)", file=out)
    _print_wire_stats(result, out)
    return 0


def cmd_report(args, out) -> int:
    from pathlib import Path

    results_dir = Path(__file__).resolve().parent.parent.parent / "benchmarks" / "results"
    if not results_dir.is_dir():
        print("no benchmark results yet — run: pytest benchmarks/ --benchmark-only",
              file=out)
        return 1
    files = sorted(results_dir.glob("*.txt"))
    if not files:
        print("results directory is empty", file=out)
        return 1
    for path in files:
        print(f"==== {path.stem} " + "=" * max(1, 60 - len(path.stem)), file=out)
        print(path.read_text().rstrip(), file=out)
        print(file=out)
    return 0


def cmd_plan(args, out) -> int:
    from repro.analysis.planner import estimate_deployment

    estimate = estimate_deployment(
        n=args.participants,
        m=args.attributes,
        family=args.family,
        level=args.level,
        include_network=args.network,
    )
    print(estimate.summary(), file=out)
    return 0


def cmd_curves(args, out) -> int:
    from repro.groups.curves import curve_names, get_curve
    from repro.math.primes import modp_safe_prime

    for name in curve_names():
        group = get_curve(name)
        print(f"{name}: field {group.params.p.bit_length()} bits, "
              f"order {group.order.bit_length()} bits, "
              f"security ~{group.security_bits} bits — verified", file=out)
    for bits in (1024, 2048, 3072):
        modp_safe_prime(bits)
        print(f"MODP-{bits}: derived from pi and verified safe prime", file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    handlers = {
        "demo": cmd_demo,
        "games": cmd_games,
        "netsim": cmd_netsim,
        "curves": cmd_curves,
        "report": cmd_report,
        "plan": cmd_plan,
        "serve-party": cmd_serve_party,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":
    raise SystemExit(main())
