"""Level-restricted party roles for the hierarchical composition.

The flat protocol's roles (:mod:`repro.core.parties`) run all three
phases back to back.  The hierarchy runs the phases in *separate
engines* — phase 1 once globally, phase 2 inside each shard, phase 3
once globally after the aggregation round — so each level needs a role
that runs exactly its slice of the refactored phase generators:

* :class:`GainServiceInitiator` / :class:`GainOnlyParticipant` — the
  global phase-1 exchange.  Forked under the same RNG labels the flat
  framework uses, so a sharded run's β values match a flat run's
  byte for byte (one ρ for everyone: β order *is* gain order across
  shard boundaries, which is what makes champion aggregation sound).
* Shard-local phase 2 is **not** a new role: each shard runs the full
  :class:`~repro.core.parties.ParticipantParty` with ``known_beta`` set
  and ``collect_submissions`` off — the unmodified paper protocol among
  the shard's members.
* :class:`SubmissionInitiator` / :class:`RankedSubmitter` — the global
  phase-3 round over the already-assigned ranks: top-k winners submit
  their information vectors, everyone else declines, and P_0 re-verifies
  gains exactly as in the flat run.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.gain import ParticipantInput
from repro.core.parties import (
    PHASE_KEYING,
    FrameworkConfig,
    InitiatorParty,
    ParticipantParty,
)
from repro.math.rng import RNG

__all__ = [
    "GainOnlyParticipant",
    "GainServiceInitiator",
    "RankedSubmitter",
    "SubmissionInitiator",
]


class GainServiceInitiator(InitiatorParty):
    """P_0's phase-1 slice: serve every dot-product request, then stop."""

    def protocol(self):
        yield from self._phase_gain_service()
        # Expose the mask assignments for the security games, mirroring
        # the flat initiator (the hierarchy itself never reads them).
        self.output = None


class GainOnlyParticipant(ParticipantParty):
    """P_j's phase-1 slice: recover the masked gain β and stop.

    The recovered β is the party's output; the orchestrator hands it to
    the shard-level run as ``known_beta``.
    """

    def protocol(self):
        beta = yield from self._phase_gain_computation()
        self.beta_unsigned = beta
        # Mirror the flat protocol's phase-2 entry boundary: β is fixed,
        # and the transition writes the durable snapshot ``--resume``
        # harvests β from after a cross-process restart.
        self.set_phase(PHASE_KEYING)
        self.output = beta


class SubmissionInitiator(InitiatorParty):
    """P_0's phase-3 slice: collect, re-verify, select the top k."""

    def protocol(self):
        yield from self._phase_collect_submissions()


class RankedSubmitter(ParticipantParty):
    """P_j's phase-3 slice: submit iff the aggregation ranked her top-k.

    The rank was assigned by the champion-aggregation round; like the
    flat protocol, non-winners send an explicit decline so the simulated
    initiator terminates deterministically.
    """

    def __init__(
        self,
        config: FrameworkConfig,
        party_id: int,
        secret_input: ParticipantInput,
        rng: RNG,
        *,
        rank: int,
        active_ids: Optional[Sequence[int]] = None,
        known_beta: Optional[int] = None,
    ):
        super().__init__(
            config, party_id, secret_input, rng,
            active_ids=active_ids, known_beta=known_beta,
        )
        self.assigned_rank = rank

    def protocol(self):
        self.beta_unsigned = self.known_beta
        self.rank = self.assigned_rank
        self._phase_submission(self.assigned_rank)
        self.output = self.assigned_rank
        return
        yield  # pragma: no cover — marks this no-receive protocol as a generator
