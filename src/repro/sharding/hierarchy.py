"""Orchestration of the hierarchical (sharded) ranking run.

Level structure (one ``GroupRankingFramework.run`` call dispatches here
whenever ``0 < config.shard_size < n``):

1. **Global phase 1** — one engine, one ρ: the initiator serves every
   dot-product request exactly as in a flat run (identical RNG fork
   labels, so the β values are byte-identical to a flat run's).  One ρ
   for everyone is the soundness anchor: β order is gain order *across*
   shard boundaries, so shard champions are comparable.
2. **Shard-level phase 2** — the active set splits into shards
   (:mod:`repro.sharding.partition`); each shard runs the unmodified
   paper protocol (keying + ZKPs, bitwise β broadcast, pairwise
   comparisons, shuffle chain) among its ≤ ``shard_size`` members via a
   phase-2-only sub-framework (``known_betas``).  Shards are
   independent engines and execute concurrently through
   :class:`~repro.runtime.parallel.WorkerPool` when ``config.workers >
   1`` — results are identical either way (each shard owns a
   deterministic RNG fork).
3. **Champion aggregation** — each shard's local top-``min(k, s)`` form
   the candidate set; :func:`~repro.sharding.aggregate.rank_champions`
   ranks them over the secret-sharing substrate.  A winner's candidate
   rank *is* her global rank (every non-candidate is dominated by ≥ k
   candidates from her own shard), so global top-k winners get exact
   ranks; everyone else keeps only the lower bound
   ``max(k+1, shard rank)``.
4. **Global phase 3** — one submission engine: winners submit their
   information vectors, everyone ranked declines or submits exactly as
   the flat protocol's step 9, and P_0 re-verifies the gains.

Transcripts, per-party metrics, wire stats, recovery bookkeeping and
checkpoint state all aggregate across levels into one
:class:`HierarchicalResult`.  Fault plans are split by phase: gain
faults hit the phase-1 engine, submission faults the phase-3 engine,
everything else the shard containing the targeted party (ids remapped
to shard-local numbering).  Checkpoint directories nest:
``<dir>/phase1`` for the global phase-1 engine and ``<dir>/shard-<i>``
per shard, so a shard-level ``kill_restart`` rejoins from durable state
and ``resume=True`` harvests phase-1 β after process death.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.framework import FrameworkResult, GroupRankingFramework, _fork
from repro.core.parties import (
    INITIATOR_ID,
    PHASE_GAIN,
    PHASE_SUBMISSION,
    TAG_AGGREGATE,
    TAG_DP_REQUEST,
    TAG_DP_RESPONSE,
    TAG_SUBMISSION,
    FrameworkConfig,
    phase_of_tag,
)
from repro.runtime.channels import WireStats, WireTransport
from repro.runtime.engine import Engine
from repro.runtime.errors import PartyTimeout, ProtocolAbort, ProtocolError
from repro.runtime.faults import FaultInjector, FaultSpec
from repro.runtime.metrics import PartyMetrics
from repro.runtime.supervisor import Supervisor
from repro.runtime.transcript import Transcript, TranscriptEntry
from repro.sharding.aggregate import AggregationOutcome, rank_champions
from repro.sharding.parties import (
    GainOnlyParticipant,
    GainServiceInitiator,
    RankedSubmitter,
    SubmissionInitiator,
)
from repro.sharding.partition import plan_shards

__all__ = ["HierarchicalResult", "run_hierarchical"]


@dataclass
class HierarchicalResult(FrameworkResult):
    """A :class:`FrameworkResult` plus the hierarchy's own observables.

    ``ranks`` carries exact global ranks for top-k winners and rank
    *lower bounds* (> k) for everyone else — the reduced-disclosure
    contract of the composition.  ``transcript`` merges all levels
    (phase-1 rounds, then the concurrent shard rounds, then one
    synthetic aggregation round of ``shard-aggregate`` entries, then the
    submission rounds); ``metrics`` is per *global* party id with every
    shard initiator folded into P_0.
    """

    shards: List[List[int]] = field(default_factory=list)
    candidates: List[int] = field(default_factory=list)
    aggregation: Optional[AggregationOutcome] = None
    #: Field-element bits the champion round moved (also present in the
    #: merged transcript under the ``shard-aggregate`` tag).
    aggregation_bits: int = 0
    #: Sequential SS rounds inside the aggregation (the merged
    #: transcript compresses them into one synthetic round).
    aggregation_rounds: int = 0
    phase1_rounds: int = 0

    @property
    def shard_sizes(self) -> List[int]:
        return [len(shard) for shard in self.shards]


def run_hierarchical(
    framework: GroupRankingFramework,
    faults: Union[Sequence[FaultSpec], None] = None,
    *,
    resume: bool = False,
    known_betas: Optional[Dict[int, int]] = None,
) -> HierarchicalResult:
    """Run the sharded composition end to end (see module docstring)."""
    config = framework.config
    specs = _fault_specs(faults)
    gain_specs, shard_specs, submission_specs = _split_faults(specs)
    rng = framework._rng

    active = list(config.participant_ids)
    excluded: List[int] = []
    attempts = 1
    rejoins = 0
    wire_parts: List[WireStats] = []

    # ---- Level 1: global phase 1 (or a β hand-off that skips it) ----
    phase1 = _Phase1Outcome(Transcript(), {}, None)
    betas = dict(known_betas) if known_betas else {}
    if not (betas and all(j in betas for j in active)):
        betas = {}
        manager = _make_manager(config, "phase1")
        start_attempt = 0
        if resume:
            if manager is None:
                raise ValueError("resume=True requires config.checkpoint_dir")
            betas, start_attempt = manager.resume_state(active)
        try:
            if not (betas and all(j in betas for j in active)):
                phase1, betas, active, excluded, attempts = _run_phase1(
                    framework, active, gain_specs, manager, start_attempt
                )
        finally:
            if manager is not None:
                manager.close()
        if phase1.wire_stats is not None:
            wire_parts.append(phase1.wire_stats)
    phase1_rounds = phase1.transcript.rounds if phase1.transcript.entries else 0

    # ---- Level 2: concurrent shard-local phase 2 ----
    shards = plan_shards(active, config.shard_size)
    shard_results = _run_shards(framework, shards, betas, shard_specs)
    shard_rank: Dict[int, int] = {}
    shard_rounds = 0
    for shard, result in zip(shards, shard_results):
        attempts += result.attempts - 1
        rejoins += result.rejoins
        excluded.extend(shard[local - 1] for local in result.excluded)
        shard_rounds = max(shard_rounds, result.rounds)
        for local, rank in result.ranks.items():
            shard_rank[shard[local - 1]] = rank
        if result.wire_stats is not None:
            wire_parts.append(result.wire_stats)

    # ---- Level 3: champion aggregation ----
    candidates: List[int] = []
    for shard, result in zip(shards, shard_results):
        local_k = min(config.k, len(result.ranks))
        candidates.extend(
            shard[local - 1]
            for local, rank in result.ranks.items()
            if rank <= local_k
        )
    candidates.sort()
    aggregation = rank_champions(
        {j: betas[j] for j in candidates},
        config.k,
        config.beta_bits,
        _fork(rng, "aggregate"),
    )
    ranks: Dict[int, int] = {}
    for j in sorted(shard_rank):
        won = j in aggregation.ranks and aggregation.ranks[j] <= aggregation.k
        if won:
            ranks[j] = aggregation.ranks[j]
        else:
            # Lower bound only: below the k-th place globally, and never
            # better than the in-shard rank.
            ranks[j] = max(config.k + 1, shard_rank[j],
                           aggregation.ranks.get(j, 0))

    # ---- Level 4: global submission round ----
    submission = _run_submission(
        framework, sorted(ranks), ranks, betas, submission_specs
    )
    rejoins += phase1.rejoins + submission.rejoins
    if submission.wire_stats is not None:
        wire_parts.append(submission.wire_stats)

    # ---- Merge transcripts, metrics and wire accounting ----
    transcript = _merge_transcripts(
        phase1.transcript, phase1_rounds, shards, shard_results, shard_rounds,
        candidates, aggregation, submission.transcript,
    )
    metrics = _merge_metrics(
        phase1.metrics, shards, shard_results, submission.metrics
    )
    wire_stats = (
        _combine_wire(wire_parts, aggregation) if wire_parts else None
    )
    return HierarchicalResult(
        ranks=ranks,
        initiator_output=submission.output,
        transcript=transcript,
        metrics=metrics,
        rounds=transcript.rounds,
        betas={j: betas[j] for j in sorted(ranks)},
        attempts=attempts,
        excluded=excluded,
        rejoins=rejoins,
        wire_stats=wire_stats,
        shards=shards,
        candidates=candidates,
        aggregation=aggregation,
        aggregation_bits=aggregation.wire_bits,
        aggregation_rounds=aggregation.metrics.rounds,
        phase1_rounds=phase1_rounds,
    )


# ---------------------------------------------------------------------------
# Fault-plan handling
# ---------------------------------------------------------------------------

def _fault_specs(faults) -> List[FaultSpec]:
    if faults is None:
        return []
    if hasattr(faults, "on_send"):
        raise ValueError(
            "the hierarchical composition takes fault plans as FaultSpec "
            "sequences (they are split per level), not pre-built injectors"
        )
    return list(faults)


def _split_faults(
    specs: Sequence[FaultSpec],
) -> Tuple[List[FaultSpec], List[FaultSpec], List[FaultSpec]]:
    """Route each spec to the engine that will see its traffic."""
    gain: List[FaultSpec] = []
    shard: List[FaultSpec] = []
    submission: List[FaultSpec] = []
    for spec in specs:
        if spec.phase == PHASE_GAIN or spec.tag in (
            TAG_DP_REQUEST, TAG_DP_RESPONSE
        ):
            gain.append(spec)
        elif spec.phase == PHASE_SUBMISSION or spec.tag == TAG_SUBMISSION:
            submission.append(spec)
        else:
            shard.append(spec)
    return gain, shard, submission


def _localize_specs(
    specs: Sequence[FaultSpec], shard: Sequence[int]
) -> List[FaultSpec]:
    """Shard-level view of the specs targeting this shard's members.

    Party and destination ids are remapped to the shard-local numbering
    (global id at sorted position ``i`` becomes local ``i+1``; the
    initiator stays 0).  A spec whose destination lives in another shard
    can never match here and is dropped.
    """
    local_of = {g: i + 1 for i, g in enumerate(shard)}
    localized: List[FaultSpec] = []
    for spec in specs:
        if spec.party == INITIATOR_ID:
            raise ValueError(
                "initiator-targeted faults in shard-level phases are "
                "ambiguous under sharding; target a participant instead"
            )
        if spec.party not in local_of:
            continue
        dst = spec.dst
        if dst is not None and dst != INITIATOR_ID:
            if dst not in local_of:
                continue
            dst = local_of[dst]
        localized.append(
            dataclasses.replace(spec, party=local_of[spec.party], dst=dst)
        )
    return localized


# ---------------------------------------------------------------------------
# Level runners
# ---------------------------------------------------------------------------

@dataclass
class _Phase1Outcome:
    transcript: Transcript
    metrics: Dict[int, PartyMetrics]
    wire_stats: Optional[WireStats]
    rejoins: int = 0


@dataclass
class _StageOutcome:
    transcript: Transcript
    metrics: Dict[int, PartyMetrics]
    wire_stats: Optional[WireStats]
    output: object
    rejoins: int = 0


def _make_manager(config: FrameworkConfig, leaf: str):
    if config.checkpoint_dir is None:
        return None
    import os

    from repro.runtime.checkpoint import CheckpointManager

    return CheckpointManager(
        os.path.join(config.checkpoint_dir, leaf),
        sync_every=config.checkpoint_every,
    )


def _stage_engine(config: FrameworkConfig, injector, manager=None):
    supervisor = Supervisor(
        timeout_rounds=config.timeout_rounds,
        max_retries=config.max_retries,
        phase_of=phase_of_tag,
        adaptive=config.adaptive_timeouts,
    )
    transport = None
    if config.wire != "declared":
        transport = WireTransport(
            config.group,
            codec=config.wire_codec,
            coalesce=config.coalesce,
            mode=config.wire,
        )
    engine = Engine(
        metered_groups=[config.group],
        faults=injector,
        supervisor=supervisor,
        wire=transport,
        checkpoints=manager,
    )
    return engine, supervisor, transport


def _run_phase1(
    framework: GroupRankingFramework,
    active: List[int],
    specs: Sequence[FaultSpec],
    manager,
    start_attempt: int,
) -> Tuple[_Phase1Outcome, Dict[int, int], List[int], List[int], int]:
    """The global gain phase, with the flat run's recovery semantics.

    A blamed phase-1 failure excludes the culprit and reruns the phase
    over the survivors under a fresh ρ (``A{attempt}|`` RNG prefixes,
    exactly like the flat framework's restart determinism).
    """
    config = framework.config
    rng = framework._rng
    injector = (
        FaultInjector(
            list(specs), rng=_fork(rng, "faults"), phase_of=phase_of_tag
        )
        if specs
        else None
    )
    excluded: List[int] = []
    attempt = start_attempt
    while True:
        prefix = "" if attempt == 0 else f"A{attempt}|"
        current_active = list(active)

        def build_party(party_id: int, known_beta: Optional[int] = None):
            if party_id == INITIATOR_ID:
                return GainServiceInitiator(
                    config,
                    framework.initiator_input,
                    _fork(rng, prefix + "initiator"),
                    active_ids=current_active,
                )
            return GainOnlyParticipant(
                config,
                party_id,
                framework.participant_inputs[party_id - 1],
                _fork(rng, prefix + f"P{party_id}"),
                active_ids=current_active,
                known_beta=known_beta,
            )

        if manager is not None:
            manager.start_attempt(attempt, build_party)
        engine, supervisor, transport = _stage_engine(config, injector, manager)
        engine.add_party(build_party(INITIATOR_ID))
        for j in current_active:
            engine.add_party(build_party(j))
        try:
            outputs = engine.run()
        except (PartyTimeout, ProtocolAbort) as failure:
            blamed = failure.blamed
            if not (
                config.recovery
                and blamed is not None
                and blamed != INITIATOR_ID
                and blamed in active
            ):
                raise
            if len(active) - 1 < 2:
                raise ProtocolError(
                    f"cannot recover: excluding P{blamed} leaves fewer "
                    "than 2 participants"
                ) from failure
            active = [j for j in active if j != blamed]
            excluded.append(blamed)
            attempt += 1
            continue
        betas = {j: outputs[j] for j in active}
        outcome = _Phase1Outcome(
            transcript=engine.transcript,
            metrics={
                pid: party.metrics for pid, party in engine.parties.items()
            },
            wire_stats=transport.stats() if transport is not None else None,
            rejoins=supervisor.rejoins,
        )
        return outcome, betas, active, excluded, attempt + 1


def _shard_config(config: FrameworkConfig, size: int, index: int) -> FrameworkConfig:
    checkpoint_dir = None
    if config.checkpoint_dir is not None:
        import os

        checkpoint_dir = os.path.join(config.checkpoint_dir, f"shard-{index}")
    return dataclasses.replace(
        config,
        num_participants=size,
        k=min(config.k, size),
        shard_size=0,
        collect_submissions=False,
        workers=1,
        checkpoint_dir=checkpoint_dir,
    )


def _run_shards(
    framework: GroupRankingFramework,
    shards: List[List[int]],
    betas: Dict[int, int],
    specs: Sequence[FaultSpec],
) -> List[FrameworkResult]:
    """Phase 2 inside every shard, concurrently when a pool is configured.

    Each shard is a self-contained sub-framework over shard-local ids
    with its own deterministic RNG fork, so the pool fan-out and the
    inline walk produce identical results; a shard failure re-raises
    with the blame remapped to the global id.
    """
    config = framework.config
    plans: List[Tuple[FrameworkConfig, List, object, Dict[int, int], List[FaultSpec]]] = []
    for index, shard in enumerate(shards):
        sub_config = _shard_config(config, len(shard), index)
        inputs = [framework.participant_inputs[g - 1] for g in shard]
        local_betas = {i + 1: betas[g] for i, g in enumerate(shard)}
        local_specs = _localize_specs(specs, shard)
        plans.append((
            sub_config,
            inputs,
            _fork(framework._rng, f"shard{index}"),
            local_betas,
            local_specs,
        ))

    if config.workers > 1 and len(shards) > 1:
        from repro.runtime.parallel import ShardJob, WorkerPool, evaluate_shard_job

        jobs = [
            ShardJob(
                config=sub_config,
                initiator_input=framework.initiator_input,
                participant_inputs=tuple(inputs),
                rng=shard_rng,
                known_betas=tuple(sorted(local_betas.items())),
                fault_specs=tuple(local_specs),
            )
            for sub_config, inputs, shard_rng, local_betas, local_specs in plans
        ]
        pool = WorkerPool(min(config.workers, len(shards)))
        try:
            return list(pool.map(evaluate_shard_job, jobs))
        finally:
            pool.shutdown()

    results: List[FrameworkResult] = []
    for index, (sub_config, inputs, shard_rng, local_betas, local_specs) in enumerate(
        plans
    ):
        sub = GroupRankingFramework(
            sub_config, framework.initiator_input, inputs, rng=shard_rng
        )
        try:
            results.append(
                sub.run(local_specs or None, known_betas=local_betas)
            )
        except (PartyTimeout, ProtocolAbort) as failure:
            blamed = failure.blamed
            if blamed is not None and blamed != INITIATOR_ID:
                failure.blamed = shards[index][blamed - 1]
            raise
    return results


def _run_submission(
    framework: GroupRankingFramework,
    ranked_ids: List[int],
    ranks: Dict[int, int],
    betas: Dict[int, int],
    specs: Sequence[FaultSpec],
) -> _StageOutcome:
    """The global step-9 round over the hierarchy-assigned ranks."""
    config = framework.config
    rng = framework._rng
    injector = (
        FaultInjector(
            list(specs), rng=_fork(rng, "submit|faults"), phase_of=phase_of_tag
        )
        if specs
        else None
    )
    engine, supervisor, transport = _stage_engine(config, injector)
    engine.add_party(
        SubmissionInitiator(
            config,
            framework.initiator_input,
            _fork(rng, "submit|initiator"),
            active_ids=ranked_ids,
            run_gain_phase=False,
        )
    )
    for j in ranked_ids:
        engine.add_party(
            RankedSubmitter(
                config,
                j,
                framework.participant_inputs[j - 1],
                _fork(rng, f"submit|P{j}"),
                rank=ranks[j],
                active_ids=ranked_ids,
                known_beta=betas.get(j),
            )
        )
    outputs = engine.run()
    return _StageOutcome(
        transcript=engine.transcript,
        metrics={pid: party.metrics for pid, party in engine.parties.items()},
        wire_stats=transport.stats() if transport is not None else None,
        output=outputs[INITIATOR_ID],
        rejoins=supervisor.rejoins,
    )


# ---------------------------------------------------------------------------
# Cross-level accounting merges
# ---------------------------------------------------------------------------

def _merge_transcripts(
    phase1: Transcript,
    phase1_rounds: int,
    shards: List[List[int]],
    shard_results: List[FrameworkResult],
    shard_rounds: int,
    candidates: List[int],
    aggregation: AggregationOutcome,
    submission: Transcript,
) -> Transcript:
    """One global-id transcript covering all levels.

    Shard engines run concurrently, so their entries share the same
    round window (offset by the phase-1 rounds); the aggregation's
    field-element traffic is folded into one synthetic round of
    ``shard-aggregate`` entries — one per ordered candidate pair, the
    total split evenly (the substrate meters totals, not pairs).
    """
    merged = Transcript()
    merged.entries.extend(phase1.entries)
    for shard, result in zip(shards, shard_results):
        global_of = {0: 0}
        global_of.update({i + 1: g for i, g in enumerate(shard)})
        for entry in result.transcript.entries:
            merged.entries.append(
                dataclasses.replace(
                    entry,
                    round=entry.round + phase1_rounds,
                    src=global_of[entry.src],
                    dst=global_of[entry.dst],
                )
            )
        for key, value in result.transcript.meta.items():
            merged.meta.setdefault(key, value)
    aggregate_round = phase1_rounds + shard_rounds
    pairs = [(a, b) for a in candidates for b in candidates if a != b]
    if pairs and aggregation.wire_bits:
        bits_each, bits_extra = divmod(aggregation.wire_bits, len(pairs))
        frames_each, frames_extra = divmod(
            aggregation.metrics.field_messages, len(pairs)
        )
        for i, (a, b) in enumerate(pairs):
            merged.record(
                aggregate_round, a, b, TAG_AGGREGATE,
                bits_each + (bits_extra if i == 0 else 0),
                frames=frames_each + (frames_extra if i == 0 else 0),
            )
    submission_offset = aggregate_round + 1
    for entry in submission.entries:
        merged.entries.append(
            dataclasses.replace(entry, round=entry.round + submission_offset)
        )
    merged.meta["hierarchical"] = True
    merged.meta["shards"] = len(shards)
    return merged


def _merge_metrics(
    phase1_metrics: Dict[int, PartyMetrics],
    shards: List[List[int]],
    shard_results: List[FrameworkResult],
    submission_metrics: Dict[int, PartyMetrics],
) -> Dict[int, PartyMetrics]:
    """Per-global-party totals; every shard's P_0 folds into global P_0."""
    merged: Dict[int, PartyMetrics] = {}

    def fold(source: Dict[int, PartyMetrics], global_of: Dict[int, int]) -> None:
        for pid, m in source.items():
            g = global_of.get(pid, pid)
            target = merged.setdefault(g, PartyMetrics(party_id=g))
            target.ops.merge(m.ops)
            target.messages_sent += m.messages_sent
            target.messages_received += m.messages_received
            target.bits_sent += m.bits_sent
            target.bits_received += m.bits_received

    fold(phase1_metrics, {})
    for shard, result in zip(shards, shard_results):
        fold(result.metrics, {i + 1: g for i, g in enumerate(shard)})
    fold(submission_metrics, {})
    return merged


def _combine_wire(
    parts: List[WireStats], aggregation: AggregationOutcome
) -> WireStats:
    """Sum measured wire accounting across levels.

    The aggregation's field-element traffic never crosses an engine
    transport, so it is added explicitly under the ``shard-aggregate``
    tag; the digest chains the per-level digests (order-sensitive, like
    the per-level digests themselves).
    """
    messages_by_tag: Dict[str, int] = {}
    bits_by_tag: Dict[str, int] = {}
    for part in parts:
        for tag, count in part.messages_by_tag.items():
            messages_by_tag[tag] = messages_by_tag.get(tag, 0) + count
        for tag, bits in part.bits_by_tag.items():
            bits_by_tag[tag] = bits_by_tag.get(tag, 0) + bits
    agg_messages = aggregation.metrics.field_messages
    if aggregation.wire_bits:
        messages_by_tag[TAG_AGGREGATE] = (
            messages_by_tag.get(TAG_AGGREGATE, 0) + agg_messages
        )
        bits_by_tag[TAG_AGGREGATE] = (
            bits_by_tag.get(TAG_AGGREGATE, 0) + aggregation.wire_bits
        )
    digest = hashlib.sha256(
        "|".join(part.digest for part in parts).encode()
    ).hexdigest()
    first = parts[0]
    return WireStats(
        codec=first.codec,
        coalesce=first.coalesce,
        mode=first.mode,
        digest=digest,
        wire_messages=sum(p.wire_messages for p in parts) + agg_messages,
        wire_bits=sum(p.wire_bits for p in parts) + aggregation.wire_bits,
        payload_bits=sum(p.payload_bits for p in parts) + aggregation.wire_bits,
        messages_by_tag=messages_by_tag,
        bits_by_tag=bits_by_tag,
        logical_messages=sum(p.logical_messages for p in parts) + agg_messages,
        encode_fallbacks=sum(p.encode_fallbacks for p in parts),
        conformance_checks=sum(p.conformance_checks for p in parts),
    )
