"""Champion aggregation: rank shard winners without an O(n²) level.

Tueno-style star topology over the secret-sharing substrate: the
candidates (every shard's local top-``min(k, s)``) jointly rank their
masked gains — all still masked under the *one* global ρ, so cross-shard
β order is cross-shard gain order.

Protocol shape (all over :class:`~repro.sharing.arithmetic.SSContext`):

1. each candidate secret-shares her β;
2. :func:`~repro.sorting.topk.probabilistic_top_k` binary-searches a
   public threshold θ, opening only the per-probe *count* of candidates
   clearing it (the satellite-fixed variant then opens the cached
   indicator bits of the successful probe — one opening per candidate,
   no recomputed comparisons);
3. the ≤ k winners' relative order comes from a Batcher network over
   value + index lanes in which **only the index lanes are opened** —
   the winners' ranks are revealed (they are the protocol's output),
   their β values are not;
4. when ties straddle the k-th place the threshold search honestly
   fails, and the fallback ranks *all* candidates through the same
   index-lane network (more comparisons, same disclosure shape).

What candidates learn beyond the flat protocol's "own rank only":
membership of the candidate set (which shards' champions are present)
and the opened probe counts/thresholds — a bounded β-interval leak
documented in PROTOCOL.md's hierarchical-composition section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.math.primes import is_prime
from repro.math.rng import RNG
from repro.sharing.arithmetic import SSContext, SSMetrics, SharedValue
from repro.sharing.comparison import less_than
from repro.sorting.networks import batcher_odd_even
from repro.sorting.topk import TopKResult, probabilistic_top_k

__all__ = ["AggregationOutcome", "aggregation_prime", "rank_champions"]

_PRIME_CACHE: Dict[int, int] = {}


def aggregation_prime(beta_bits: int) -> int:
    """The largest prime below ``2^(beta_bits+2)``.

    Sitting just *under* a power of two makes the LSB gadget's
    rejection sampling accept with probability ``p / 2^width ≈ 1``, so
    the measured multiplication count tracks the symbolic cost model's
    deterministic formula instead of a retry-inflated one; the two
    guard bits keep every β in ``[0, p/2)`` (the comparison
    precondition) with room for the doubling inside the gadget.
    """
    cached = _PRIME_CACHE.get(beta_bits)
    if cached is not None:
        return cached
    candidate = (1 << (beta_bits + 2)) - 1
    while not is_prime(candidate):
        candidate -= 2
    _PRIME_CACHE[beta_bits] = candidate
    return candidate


@dataclass
class AggregationOutcome:
    """What the champion-aggregation round produced."""

    ranks: Dict[int, int]        # candidate id -> rank among candidates
    winners: List[int]           # candidate ids ranked ≤ k, sorted by rank
    k: int                       # the effective k the round selected
    candidates: List[int]        # all candidate ids, sorted
    topk: Optional[TopKResult]   # None when the search was skipped (k ≥ #candidates)
    used_fallback: bool          # threshold search failed; full network ranked
    prime: int
    field_bits: int
    sort_comparators: int
    metrics: SSMetrics

    @property
    def wire_bits(self) -> int:
        """Total bits the round moved between candidates.

        Every share distribution, multiplication, and opening in the
        substrate is metered as point-to-point field-element messages
        (:class:`SSMetrics`); each costs one field element on the wire.
        """
        return self.metrics.field_messages * self.field_bits


def rank_champions(
    candidate_betas: Dict[int, int],
    k: int,
    beta_bits: int,
    rng: RNG,
) -> AggregationOutcome:
    """Rank the candidate set and name the global top-k winners.

    ``candidate_betas`` maps party id to masked gain (all under one ρ).
    Winners get exact candidate ranks; after a successful threshold
    search, losers' ranks stay hidden (they only learn they are below
    the k-th place).
    """
    if not candidate_betas:
        raise ValueError("cannot aggregate an empty candidate set")
    ids = sorted(candidate_betas)
    values = [candidate_betas[j] for j in ids]
    k_eff = min(k, len(ids))
    if len(ids) == 1:
        return AggregationOutcome(
            ranks={ids[0]: 1}, winners=[ids[0]], k=k_eff, candidates=ids,
            topk=None, used_fallback=False, prime=aggregation_prime(beta_bits),
            field_bits=aggregation_prime(beta_bits).bit_length(),
            sort_comparators=0, metrics=SSMetrics(),
        )
    prime = aggregation_prime(beta_bits)
    context = SSContext(parties=len(ids), prime=prime, rng=rng)
    value_bound = 1 << beta_bits

    topk: Optional[TopKResult] = None
    used_fallback = False
    sort_comparators = 0
    ranks: Dict[int, int] = {}
    if k_eff < len(ids):
        topk = probabilistic_top_k(context, values, k_eff, value_bound)
    if topk is not None and topk.succeeded:
        winner_ids = [ids[i - 1] for i in topk.members]
        winner_values = [candidate_betas[j] for j in winner_ids]
        winner_ranks, sort_comparators = _network_ranks(
            context, winner_values
        )
        # A winner's rank among winners IS her rank among candidates:
        # anyone above her clears the threshold too, hence is a winner.
        ranks = {winner_ids[i - 1]: r for i, r in winner_ranks.items()}
    else:
        used_fallback = topk is not None
        all_ranks, sort_comparators = _network_ranks(context, values)
        ranks = {ids[i - 1]: r for i, r in all_ranks.items()}
    winners = sorted(
        (j for j, r in ranks.items() if r <= k_eff), key=lambda j: ranks[j]
    )
    return AggregationOutcome(
        ranks=ranks, winners=winners, k=k_eff, candidates=ids, topk=topk,
        used_fallback=used_fallback, prime=prime,
        field_bits=prime.bit_length(), sort_comparators=sort_comparators,
        metrics=context.metrics,
    )


def _network_ranks(
    context: SSContext, plain_values: Sequence[int]
):
    """Batcher sort with value + index lanes, opening index lanes only.

    Unlike :func:`~repro.sorting.ss_sort.ss_sort_with_ranks` (which
    opens the sorted values too), this reveals just the permutation of
    the inputs — i.e. exactly the ranks, which are the round's intended
    output.  Equal values never swap (``[a < b] = 0``), so ties get
    adjacent ranks deterministically.  Returns ``({position → rank},
    comparator count)`` with positions 1-based and rank 1 the largest.
    """
    m = len(plain_values)
    if m == 1:
        return {1: 1}, 0
    network = batcher_odd_even(m)
    value_lanes: List[SharedValue] = [context.share(v) for v in plain_values]
    index_lanes: List[SharedValue] = [context.share(i + 1) for i in range(m)]
    for i, j in network.comparators:
        a, b = value_lanes[i], value_lanes[j]
        ia, ib = index_lanes[i], index_lanes[j]
        swap_bit = less_than(context, a, b)
        minimum = b + context.multiply(swap_bit, a - b)
        value_lanes[i], value_lanes[j] = minimum, a + b - minimum
        index_min = ib + context.multiply(swap_bit, ia - ib)
        index_lanes[i], index_lanes[j] = index_min, ia + ib - index_min
    opened_indexes = [lane.open() for lane in index_lanes]
    # Ascending position pos holds the (pos+1)-th smallest input, so the
    # input at the last position ranks 1.
    ranks = {
        party: m - position
        for position, party in enumerate(opened_indexes)
    }
    return ranks, network.comparator_count
