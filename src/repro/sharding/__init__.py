"""Hierarchical (sharded tournament) composition of the ranking protocol.

Phase 2 of the paper's protocol is O(n²) comparison circuits plus an
n-hop shuffle chain — fine at the paper's n=16, fatal at large n.  This
package composes the protocol with itself:

* :mod:`repro.sharding.partition` — deterministic split of the active
  set into shards of at most ``config.shard_size`` participants;
* :mod:`repro.sharding.parties` — the level-restricted party roles
  (phase-1-only service, submission-only initiator/participant) built
  from the refactored phase generators in :mod:`repro.core.parties`;
* :mod:`repro.sharding.aggregate` — the champion-aggregation round: a
  Tueno-style star topology where shard champions rank each other over
  the secret-sharing substrate (``sorting/topk.py`` + a Batcher network
  on the survivors);
* :mod:`repro.sharding.hierarchy` — the orchestrator gluing the levels
  together and merging transcripts, metrics, and wire accounting into
  one :class:`~repro.sharding.hierarchy.HierarchicalResult`.

Entry point: ``GroupRankingFramework.run`` dispatches here whenever
``0 < config.shard_size < config.num_participants``.
"""

from repro.sharding.hierarchy import HierarchicalResult, run_hierarchical
from repro.sharding.partition import plan_shards

__all__ = ["HierarchicalResult", "plan_shards", "run_hierarchical"]
