"""Deterministic shard planning.

The split is a pure function of the (sorted) active id set and the
configured shard size, so every party — and a replay, and the symbolic
cost model — derives the identical layout with no extra communication.

Sizes are balanced: ``ceil(n / shard_size)`` shards whose sizes differ
by at most one, every shard at least 2 strong (the comparison phase
needs a peer), assigned in sorted-id order.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["plan_shards", "shard_sizes"]


def shard_sizes(n: int, shard_size: int) -> List[int]:
    """Balanced shard sizes for ``n`` parties, each ≤ ``shard_size``.

    ``n`` parties split into ``ceil(n / shard_size)`` shards; the first
    ``n mod shards`` shards take the extra member.  Balancing (instead
    of greedy filling) makes the slowest shard — the wall-clock of the
    concurrent level — as small as possible.  When the division would
    strand a singleton (say n=3 with shard_size=2), the shard count is
    lowered instead: a shard may then exceed ``shard_size`` by one,
    because a 1-party shard cannot run the comparison phase at all.
    """
    if n < 2:
        raise ValueError("sharding needs at least 2 participants")
    if shard_size < 2:
        raise ValueError("shard_size must be at least 2")
    count = max(1, min(-(-n // shard_size), n // 2))
    base, extra = divmod(n, count)
    return [base + 1 if i < extra else base for i in range(count)]


def plan_shards(active_ids: Sequence[int], shard_size: int) -> List[List[int]]:
    """Partition the active ids into consecutive, sorted shards."""
    ordered = sorted(active_ids)
    sizes = shard_sizes(len(ordered), shard_size)
    shards: List[List[int]] = []
    start = 0
    for size in sizes:
        shards.append(ordered[start:start + size])
        start += size
    return shards
