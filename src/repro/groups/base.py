"""Abstract prime-order group interface with operation metering.

The paper's efficiency analysis (Section VI-B) counts *group
multiplications*; every concrete group routes its operations through an
:class:`OperationCounter` so protocol runs report exact counts, which the
benchmark harness converts to time with calibrated per-operation costs.

Elements are opaque values owned by their group (integers for DL groups,
point tuples for elliptic curves).  Protocol code never touches the
representation; it calls the group's methods.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.math.rng import RNG

Element = Any


@dataclass
class OperationCounter:
    """Tally of group operations, attachable to one or more groups.

    Membership checks are tallied separately (``membership_checks`` /
    ``membership_cache_hits``) and deliberately excluded from
    :attr:`equivalent_multiplications`: validation is unmetered in the
    paper's cost model, and the counters exist to quantify how much the
    per-group membership memo saves.
    """

    multiplications: int = 0
    exponentiations: int = 0
    exponent_bits: int = 0
    inversions: int = 0
    membership_checks: int = 0
    membership_cache_hits: int = 0

    def record_mul(self, count: int = 1) -> None:
        self.multiplications += count

    def record_exp(self, bits: int) -> None:
        self.exponentiations += 1
        self.exponent_bits += bits

    def record_inv(self, count: int = 1) -> None:
        self.inversions += count

    def record_membership(self, hit: bool) -> None:
        self.membership_checks += 1
        if hit:
            self.membership_cache_hits += 1

    @property
    def equivalent_multiplications(self) -> int:
        """Total cost in the paper's unit (group multiplications).

        Square-and-multiply accounting: an exponentiation with a k-bit
        exponent is ~1.5k multiplications.
        """
        return self.multiplications + (3 * self.exponent_bits) // 2

    def snapshot(self) -> "OperationCounter":
        return OperationCounter(
            multiplications=self.multiplications,
            exponentiations=self.exponentiations,
            exponent_bits=self.exponent_bits,
            inversions=self.inversions,
            membership_checks=self.membership_checks,
            membership_cache_hits=self.membership_cache_hits,
        )

    def merge(self, other: "OperationCounter") -> None:
        """Fold another counter into this one (in place).

        The parallel engine meters each worker-side job on a private
        counter shipped back with the result; the owning party merges
        them so per-party metrics stay exact regardless of how the work
        was distributed across processes.
        """
        self.multiplications += other.multiplications
        self.exponentiations += other.exponentiations
        self.exponent_bits += other.exponent_bits
        self.inversions += other.inversions
        self.membership_checks += other.membership_checks
        self.membership_cache_hits += other.membership_cache_hits

    def diff(self, earlier: "OperationCounter") -> "OperationCounter":
        return OperationCounter(
            multiplications=self.multiplications - earlier.multiplications,
            exponentiations=self.exponentiations - earlier.exponentiations,
            exponent_bits=self.exponent_bits - earlier.exponent_bits,
            inversions=self.inversions - earlier.inversions,
            membership_checks=self.membership_checks - earlier.membership_checks,
            membership_cache_hits=(
                self.membership_cache_hits - earlier.membership_cache_hits
            ),
        )

    def reset(self) -> None:
        self.multiplications = 0
        self.exponentiations = 0
        self.exponent_bits = 0
        self.inversions = 0
        self.membership_checks = 0
        self.membership_cache_hits = 0


@dataclass
class Group:
    """A cyclic group of prime order ``order`` in which DDH is assumed hard.

    Concrete subclasses: :class:`repro.groups.dl.DLGroup` and
    :class:`repro.groups.elliptic.EllipticCurveGroup`.
    """

    counter: OperationCounter = field(default_factory=OperationCounter)

    #: Cap on the memoized serialize/deserialize caches.  Once full the
    #: caches stop growing and further elements are encoded directly.
    SERIALIZE_CACHE_MAX = 4096

    #: Cap on the membership-check memo (LRU; see
    #: :meth:`_membership_cached`).
    MEMBERSHIP_CACHE_MAX = 4096

    def __post_init__(self) -> None:
        self._serialize_cache: dict = {}
        self._deserialize_cache: dict = {}
        self._membership_cache: "OrderedDict" = OrderedDict()

    # -- facts subclasses must provide ------------------------------------
    @property
    def order(self) -> int:
        """Prime order q of the group."""
        raise NotImplementedError

    @property
    def element_bits(self) -> int:
        """Wire size of one serialized element, in bits."""
        raise NotImplementedError

    @property
    def security_bits(self) -> int:
        """Equivalent symmetric security level (80/112/128...)."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        raise NotImplementedError

    def generator(self) -> Element:
        raise NotImplementedError

    def identity(self) -> Element:
        raise NotImplementedError

    # -- operations --------------------------------------------------------
    def mul(self, a: Element, b: Element) -> Element:
        raise NotImplementedError

    def exp(self, a: Element, k: int) -> Element:
        raise NotImplementedError

    def inv(self, a: Element) -> Element:
        raise NotImplementedError

    def eq(self, a: Element, b: Element) -> bool:
        raise NotImplementedError

    def is_element(self, a: Element) -> bool:
        """Membership test (used to validate incoming protocol messages)."""
        raise NotImplementedError

    # -- derived helpers ----------------------------------------------------
    def div(self, a: Element, b: Element) -> Element:
        return self.mul(a, self.inv(b))

    def exp_generator(self, k: int) -> Element:
        return self.exp(self.generator(), k)

    def is_identity(self, a: Element) -> bool:
        return self.eq(a, self.identity())

    def random_exponent(self, rng: RNG) -> int:
        """Uniform exponent in ``Z_q``."""
        return rng.randrange(self.order)

    def random_nonzero_exponent(self, rng: RNG) -> int:
        """Uniform exponent in ``Z_q \\ {0}`` (for rerandomization)."""
        return rng.rand_nonzero(self.order)

    def random_element(self, rng: RNG) -> Element:
        return self.exp_generator(self.random_exponent(rng))

    def serialize(self, a: Element) -> bytes:
        """Canonical byte encoding; length matches ``element_bits``."""
        raise NotImplementedError

    def deserialize(self, data: bytes) -> Element:
        """Inverse of :meth:`serialize` with membership validation."""
        a = int.from_bytes(data, "big")
        if not self.is_element(a):
            raise ValueError("decoded value is not a group element")
        return a

    # -- wire facts ---------------------------------------------------------
    @property
    def wire_bytes(self) -> int:
        """Exact length of one canonical element encoding, in bytes.

        The wire codec relies on this being constant per group so element
        bodies need no length prefix.
        """
        return (self.element_bits + 7) // 8

    @property
    def wire_faithful(self) -> bool:
        """Whether serialize/deserialize round-trips distinct elements.

        The analysis-only :class:`CountingGroup` collapses every element
        to the constant 1, so interning and transcoding over it would
        fraudulently dedupe all traffic; it reports ``False``.
        """
        return True

    # -- memoized canonical encodings ---------------------------------------
    def serialize_cached(self, a: Element) -> bytes:
        """:meth:`serialize` with a bounded per-group memo.

        Hot protocol paths serialize the same elements repeatedly (``g``,
        ``y``, pooled ``(g^r, y^r)`` pairs, rerandomized chain entries);
        the memo makes each element's canonical bytes a one-time cost.
        """
        cache = self._serialize_cache
        data = cache.get(a)
        if data is None:
            data = self.serialize(a)
            if len(cache) < self.SERIALIZE_CACHE_MAX:
                cache[a] = data
        return data

    def _membership_cached(self, key: Any, compute: Callable[[], bool]) -> bool:
        """Bounded LRU memo for subgroup-membership verdicts.

        Groups are immutable, so a membership verdict never changes —
        the memo needs no invalidation.  Protocol runs re-validate the
        same elements constantly (``validate_elements`` checks every
        received ciphertext component, and hot elements like ``g``,
        ``y`` and pooled pairs recur across rounds), so the residue /
        scalar-multiplication test is paid once per distinct element.
        Hits and misses are tallied on the attached
        :class:`OperationCounter` (``membership_*`` fields); the check
        itself stays unmetered, matching the paper's cost model.
        """
        cache = self._membership_cache
        verdict = cache.get(key)
        if verdict is not None:
            cache.move_to_end(key)
            self.counter.record_membership(hit=True)
            return verdict
        verdict = bool(compute())
        self.counter.record_membership(hit=False)
        cache[key] = verdict
        if len(cache) > self.MEMBERSHIP_CACHE_MAX:
            cache.popitem(last=False)
        return verdict

    def deserialize_cached(self, data: bytes) -> Element:
        """:meth:`deserialize` with a bounded per-group memo.

        Caching the inverse direction matters most for curves, where
        decompression pays a modular square root per point.
        """
        cache = self._deserialize_cache
        a = cache.get(data)
        if a is None:
            a = self.deserialize(data)
            if len(cache) < self.SERIALIZE_CACHE_MAX:
                cache[data] = a
        return a

    def attach_counter(self, counter: Optional[OperationCounter]) -> None:
        """Redirect this group's operation metering to ``counter``."""
        self.counter = counter if counter is not None else OperationCounter()
