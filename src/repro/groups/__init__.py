"""Cyclic groups of prime order with hard DDH, as the paper requires.

Two families (paper Section IV-B):

* **DL** — the subgroup of quadratic residues modulo a safe prime
  (:mod:`repro.groups.dl`), at the standardized 1024/2048/3072-bit sizes.
* **ECC** — prime-order subgroups of short-Weierstrass elliptic curves
  (:mod:`repro.groups.elliptic`), at 160/192/224/256-bit sizes.

Both implement the :class:`repro.groups.base.Group` interface so every
protocol in the library is generic over the group choice, and both meter
group multiplications/exponentiations through
:class:`repro.runtime.metrics.OperationCounter` for the efficiency
analysis of paper Section VI-B.
"""

from repro.groups.base import Group, OperationCounter
from repro.groups.dl import DLGroup
from repro.groups.elliptic import EllipticCurveGroup
from repro.groups.params import (
    SECURITY_LEVELS,
    group_for_security_level,
    make_dl_group,
    make_ecc_group,
    make_test_group,
)

__all__ = [
    "DLGroup",
    "EllipticCurveGroup",
    "Group",
    "OperationCounter",
    "SECURITY_LEVELS",
    "group_for_security_level",
    "make_dl_group",
    "make_ecc_group",
    "make_test_group",
]
