"""The DL group: quadratic residues modulo a safe prime.

With ``p = 2q + 1`` (both prime), the quadratic residues modulo ``p``
form a cyclic subgroup of prime order ``q`` in which DDH is believed
hard — the paper's "DL" instantiation.  ``g = 4 = 2^2`` is always a
residue and, because ``q`` is prime, any residue other than 1 generates
the whole subgroup.
"""

from __future__ import annotations

from typing import Optional

from repro.groups.base import Element, Group, OperationCounter
from repro.math import backend
from repro.math.modular import jacobi_symbol, mod_inverse
from repro.math.primes import is_safe_prime, modp_safe_prime, random_safe_prime
from repro.math.rng import RNG


class DLGroup(Group):
    """Subgroup of quadratic residues modulo the safe prime ``p``.

    Elements are plain integers in ``[1, p-1]`` with Jacobi symbol 1.
    """

    def __init__(
        self,
        p: int,
        generator: int = 4,
        security_bits: Optional[int] = None,
        verify: bool = True,
        counter: Optional[OperationCounter] = None,
    ):
        super().__init__(counter=counter or OperationCounter())
        if verify and not is_safe_prime(p):
            raise ValueError("p must be a safe prime")
        self._p = p
        self._q = (p - 1) // 2
        generator %= p
        if generator in (0, 1) or jacobi_symbol(generator, p) != 1:
            raise ValueError("generator must be a non-trivial quadratic residue")
        self._g = generator
        self._security_bits = security_bits or _nist_equivalent_security(p.bit_length())

    # -- class constructors --------------------------------------------------
    @classmethod
    def standard(cls, bits: int, counter: Optional[OperationCounter] = None) -> "DLGroup":
        """The standardized MODP group of the given modulus size."""
        return cls(modp_safe_prime(bits), verify=False, counter=counter)

    @classmethod
    def random(
        cls, bits: int, rng: Optional[RNG] = None, counter: Optional[OperationCounter] = None
    ) -> "DLGroup":
        """A fresh (small) group for tests; ``bits`` should stay modest."""
        return cls(random_safe_prime(bits, rng), verify=False, counter=counter)

    # -- facts ----------------------------------------------------------------
    @property
    def modulus(self) -> int:
        return self._p

    @property
    def order(self) -> int:
        return self._q

    @property
    def element_bits(self) -> int:
        return self._p.bit_length()

    @property
    def security_bits(self) -> int:
        return self._security_bits

    @property
    def name(self) -> str:
        return f"DL-{self._p.bit_length()}"

    def generator(self) -> Element:
        return self._g

    def identity(self) -> Element:
        return 1

    # -- operations -------------------------------------------------------------
    # Arithmetic dispatches through repro.math.backend at call time, so
    # the active backend (pure python or gmpy2) accelerates every group
    # operation; the counter is recorded above the seam, keeping the
    # paper's operation accounting backend-independent.
    def mul(self, a: int, b: int) -> int:
        self.counter.record_mul()
        return backend.mulmod(a, b, self._p)

    def exp(self, a: int, k: int) -> int:
        k %= self._q
        self.counter.record_exp(self._q.bit_length())
        return backend.powmod(a, k, self._p)

    def inv(self, a: int) -> int:
        self.counter.record_inv()
        return mod_inverse(a, self._p)

    def eq(self, a: int, b: int) -> bool:
        return a % self._p == b % self._p

    def is_element(self, a: Element) -> bool:
        # The residue test costs a full-width Jacobi evaluation per
        # call and protocol runs re-check the same elements constantly,
        # so verdicts are memoized (bounded LRU; groups are immutable,
        # hence no invalidation — hit counts land in the counter's
        # membership_* fields).
        if not isinstance(a, int) or not 0 < a < self._p:
            return False
        if a == 1:
            return True
        return self._membership_cached(
            a, lambda: jacobi_symbol(a, self._p) == 1
        )

    def serialize(self, a: int) -> bytes:
        return int(a).to_bytes((self.element_bits + 7) // 8, "big")

    def deserialize(self, data: bytes) -> int:
        # The wire format ships fixed-width element bodies, so a length
        # mismatch means framing corruption — reject it before the
        # residue check can misread a short/long buffer as some other
        # (valid) element.
        if len(data) != self.wire_bytes:
            raise ValueError(
                f"{self.name}: element body must be {self.wire_bytes} bytes, "
                f"got {len(data)}"
            )
        return super().deserialize(data)

    def __repr__(self) -> str:
        return f"DLGroup(bits={self._p.bit_length()}, security={self._security_bits})"


def _nist_equivalent_security(modulus_bits: int) -> int:
    """NIST SP 800-57 equivalences used by the paper (FIPS 140-2 IG)."""
    if modulus_bits >= 3072:
        return 128
    if modulus_bits >= 2048:
        return 112
    if modulus_bits >= 1024:
        return 80
    # Toy/test groups: report something honest and clearly sub-standard.
    return max(8, modulus_bits // 16)
