"""Standard curve domain parameters and a tiny-curve builder for tests.

The four standard curves cover the security tiers of the paper's Fig. 3(a):
secp160r1 (80-bit), P-192, P-224 (112-bit) and P-256 (128-bit).  Parameters
are from SEC 2 / FIPS 186; every registry lookup verifies the full domain
(`CurveParams.verify`) once per process, so a transcription error cannot
silently produce a weak group.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional

from repro.groups.elliptic import CurveParams, EllipticCurveGroup, _CurveArithmetic
from repro.math.modular import is_quadratic_residue, mod_sqrt
from repro.math.primes import is_prime
from repro.math.rng import RNG, SystemRNG

_SECP160R1 = CurveParams(
    name="secp160r1",
    p=2**160 - 2**31 - 1,
    a=2**160 - 2**31 - 1 - 3,
    b=0x1C97BEFC54BD7A8B65ACF89F81D4D4ADC565FA45,
    gx=0x4A96B5688EF573284664698968C38BB913CBFC82,
    gy=0x23A628553168947D59DCC912042351377AC5FB32,
    n=0x0100000000000000000001F4C8F927AED3CA752257,
    h=1,
    security_bits=80,
)

_SECP192R1 = CurveParams(
    name="secp192r1",
    p=2**192 - 2**64 - 1,
    a=2**192 - 2**64 - 1 - 3,
    b=0x64210519E59C80E70FA7E9AB72243049FEB8DEECC146B9B1,
    gx=0x188DA80EB03090F67CBF20EB43A18800F4FF0AFD82FF1012,
    gy=0x07192B95FFC8DA78631011ED6B24CDD573F977A11E794811,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFF99DEF836146BC9B1B4D22831,
    h=1,
    security_bits=96,
)

_SECP224R1 = CurveParams(
    name="secp224r1",
    p=2**224 - 2**96 + 1,
    a=2**224 - 2**96 + 1 - 3,
    b=0xB4050A850C04B3ABF54132565044B0B7D7BFD8BA270B39432355FFB4,
    gx=0xB70E0CBD6BB4BF7F321390B94A03C1D356C21122343280D6115C1D21,
    gy=0xBD376388B5F723FB4C22DFE6CD4375A05A07476444D5819985007E34,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFF16A2E0B8F03E13DD29455C5C2A3D,
    h=1,
    security_bits=112,
)

_SECP256R1 = CurveParams(
    name="secp256r1",
    p=2**256 - 2**224 + 2**192 + 2**96 - 1,
    a=2**256 - 2**224 + 2**192 + 2**96 - 1 - 3,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
    h=1,
    security_bits=128,
)

_REGISTRY: Dict[str, CurveParams] = {
    params.name: params
    for params in (_SECP160R1, _SECP192R1, _SECP224R1, _SECP256R1)
}

# The paper's Fig. 3(a) tiers: symmetric security level -> curve.
CURVE_FOR_SECURITY = {80: "secp160r1", 96: "secp192r1", 112: "secp224r1", 128: "secp256r1"}


@lru_cache(maxsize=None)
def _verified_params(name: str) -> CurveParams:
    params = _REGISTRY[name]
    params.verify()
    return params


def curve_names() -> list:
    return sorted(_REGISTRY)


def get_curve(name: str) -> EllipticCurveGroup:
    """A verified standard curve group by name (e.g. ``"secp160r1"``)."""
    if name not in _REGISTRY:
        raise ValueError(f"unknown curve {name!r}; known: {curve_names()}")
    return EllipticCurveGroup(_verified_params(name), verify=False)


def build_tiny_curve(
    field_bits: int = 14, rng: Optional[RNG] = None, max_attempts: int = 2000
) -> EllipticCurveGroup:
    """A small random curve with *prime* group order, for fast tests.

    Counts points by brute force (enumerating quadratic residues), so the
    field must stay small (≤ ~2^18).  Security is intentionally nil — the
    point is exercising every code path cheaply and deterministically.
    """
    if field_bits > 18:
        raise ValueError("tiny curves only; use a standard curve above 2^18")
    rng = rng or SystemRNG()
    # Pick a field prime once; retry curve coefficients until the order is prime.
    p = _random_field_prime(field_bits, rng)
    for _ in range(max_attempts):
        a = rng.randrange(p)
        b = rng.randrange(p)
        if (4 * a**3 + 27 * b**2) % p == 0:
            continue
        order = _count_points(p, a, b)
        if not is_prime(order):
            continue
        base = _find_point(p, a, b, rng)
        if base is None:
            continue
        params = CurveParams(
            name=f"tiny-{p}",
            p=p,
            a=a,
            b=b,
            gx=base[0],
            gy=base[1],
            n=order,
            h=1,
            security_bits=8,
        )
        return EllipticCurveGroup(params, verify=True)
    raise RuntimeError("failed to find a prime-order tiny curve")


def _random_field_prime(bits: int, rng: RNG) -> int:
    while True:
        candidate = rng.randbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate) and candidate % 4 == 3:
            # p ≡ 3 (mod 4) keeps mod_sqrt on its fast path.
            return candidate


def _count_points(p: int, a: int, b: int) -> int:
    """|E(F_p)| by summing Legendre symbols: 1 + Σ_x (1 + χ(x³+ax+b))."""
    count = 1  # infinity
    for x in range(p):
        rhs = (x * x * x + a * x + b) % p
        if rhs == 0:
            count += 1
        elif is_quadratic_residue(rhs, p):
            count += 2
    return count


def _find_point(p: int, a: int, b: int, rng: RNG):
    for _ in range(4 * p):
        x = rng.randrange(p)
        rhs = (x * x * x + a * x + b) % p
        if rhs == 0:
            return (x, 0)
        if is_quadratic_residue(rhs, p):
            return (x, mod_sqrt(rhs, p))
    return None
