"""Fixed-base exponentiation with precomputed tables.

Most exponentiations in the framework share one base: ``g^r`` during
encryption, keying and proofs, and ``y^r`` for a fixed public key.  A
one-time table of ``base^(2^(w·i))`` powers turns each subsequent
exponentiation into table lookups and multiplications only — the classic
fixed-base windowing trade (≈ ``λ/w`` multiplications instead of
≈ ``1.5·λ``; window ``w = 4`` gives ~6× fewer group operations).

Opt-in: protocols keep calling ``group.exp_generator`` by default; a
performance-sensitive caller builds a :class:`PrecomputedBase` once and
reuses it.  The ABL-fixedbase bench quantifies the win on real groups.

Table build and evaluation go through ``group.mul`` only, so they
inherit the active arithmetic backend (:mod:`repro.math.backend`) and
its native ``mulmod`` for free; table entries are plain ``int``
elements on every backend, so a table built under one backend is valid
under any other.
"""

from __future__ import annotations

from typing import List

from repro.groups.base import Element, Group


class PrecomputedBase:
    """Windowed fixed-base exponentiation for one ``(group, base)`` pair.

    Precomputes ``base^(j · 2^(w·i))`` for every window position ``i``
    and window value ``j ∈ [1, 2^w)``; an exponentiation then multiplies
    one table entry per non-zero window.
    """

    def __init__(self, group: Group, base: Element, window_bits: int = 4):
        if not 1 <= window_bits <= 8:
            raise ValueError("window must be between 1 and 8 bits")
        self.group = group
        self.base = base
        self.window_bits = window_bits
        self._windows = (group.order.bit_length() + window_bits - 1) // window_bits
        self._table: List[List[Element]] = []
        self._build_table()

    def _build_table(self) -> None:
        group = self.group
        window_size = 1 << self.window_bits
        current = self.base
        for _ in range(self._windows):
            row = [group.identity()]
            accumulator = group.identity()
            for _ in range(1, window_size):
                accumulator = group.mul(accumulator, current)
                row.append(accumulator)
            self._table.append(row)
            # Advance the base by 2^window_bits: square window_bits times.
            for _ in range(self.window_bits):
                current = group.mul(current, current)

    @property
    def table_entries(self) -> int:
        return self._windows * ((1 << self.window_bits) - 1)

    def exp(self, exponent: int) -> Element:
        """``base^exponent`` via table lookups (multiplications only)."""
        group = self.group
        exponent %= group.order
        result = group.identity()
        mask = (1 << self.window_bits) - 1
        for window_index in range(self._windows):
            digit = (exponent >> (window_index * self.window_bits)) & mask
            if digit:
                result = group.mul(result, self._table[window_index][digit])
        return result

    def multiplications_per_exp(self) -> float:
        """Expected group multiplications per exponentiation.

        On average a fraction ``(2^w − 1)/2^w`` of the ``λ/w`` windows
        are non-zero, each costing one multiplication.
        """
        window_size = 1 << self.window_bits
        return self._windows * (window_size - 1) / window_size
