"""Short-Weierstrass elliptic curve groups: y² = x³ + ax + b over F_p.

Implements affine point arithmetic with a Jacobian-coordinate scalar
multiplication ladder (the dominant cost), parameterized curve domain
verification, and the :class:`repro.groups.base.Group` interface over a
prime-order (sub)group — the paper's "ECC" instantiation.

Points are represented as ``(x, y)`` tuples; the point at infinity is
``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.groups.base import Element, Group, OperationCounter
from repro.math import backend
from repro.math.modular import is_quadratic_residue, mod_inverse, mod_sqrt
from repro.math.primes import is_prime

Point = Optional[Tuple[int, int]]


@dataclass(frozen=True)
class CurveParams:
    """Domain parameters of a curve with a prime-order base-point subgroup."""

    name: str
    p: int          # field prime
    a: int          # curve coefficient a
    b: int          # curve coefficient b
    gx: int         # base point x
    gy: int         # base point y
    n: int          # order of the base point (prime)
    h: int          # cofactor
    security_bits: int

    def verify(self) -> None:
        """Check internal consistency; raises ``ValueError`` on any failure.

        Verifies: field primality, non-singularity, base point on curve,
        subgroup order primality, and ``n·G = O``.
        """
        if not is_prime(self.p):
            raise ValueError(f"{self.name}: field modulus is not prime")
        if (4 * pow(self.a, 3, self.p) + 27 * pow(self.b, 2, self.p)) % self.p == 0:
            raise ValueError(f"{self.name}: curve is singular")
        if (self.gy * self.gy - (self.gx**3 + self.a * self.gx + self.b)) % self.p:
            raise ValueError(f"{self.name}: base point is not on the curve")
        if not is_prime(self.n):
            raise ValueError(f"{self.name}: subgroup order is not prime")
        curve = _CurveArithmetic(self.p, self.a)
        if curve.scalar_mul((self.gx, self.gy), self.n) is not None:
            raise ValueError(f"{self.name}: n*G != O")


class _CurveArithmetic:
    """Raw point arithmetic over one curve (no metering, no subgroup logic)."""

    def __init__(self, p: int, a: int):
        self.p = p
        self.a = a % p

    def add(self, p1: Point, p2: Point) -> Point:
        if p1 is None:
            return p2
        if p2 is None:
            return p1
        x1, y1 = p1
        x2, y2 = p2
        p = self.p
        if x1 == x2:
            if (y1 + y2) % p == 0:
                return None
            return self.double(p1)
        slope = (y2 - y1) * mod_inverse(x2 - x1, p) % p
        x3 = (slope * slope - x1 - x2) % p
        y3 = (slope * (x1 - x3) - y1) % p
        return (x3, y3)

    def double(self, pt: Point) -> Point:
        if pt is None:
            return None
        x, y = pt
        p = self.p
        if y == 0:
            return None
        slope = (3 * x * x + self.a) * mod_inverse(2 * y, p) % p
        x3 = (slope * slope - 2 * x) % p
        y3 = (slope * (x - x3) - y) % p
        return (x3, y3)

    def negate(self, pt: Point) -> Point:
        if pt is None:
            return None
        x, y = pt
        return (x, (-y) % self.p)

    # -- Jacobian ladder for scalar multiplication ---------------------------
    # Affine addition costs a field inversion per step; Jacobian coordinates
    # defer the single inversion to the end, which is what makes pure-Python
    # scalar multiplication tolerable.

    def scalar_mul(self, pt: Point, k: int) -> Point:
        if pt is None or k == 0:
            return None
        if k < 0:
            return self.scalar_mul(self.negate(pt), -k)
        x, y = pt
        jx, jy, jz = self._jacobian_ladder((x, y, 1), k)
        return self._from_jacobian((jx, jy, jz))

    def _jacobian_ladder(
        self, pt: Tuple[int, int, int], k: int
    ) -> Tuple[int, int, int]:
        result = (0, 1, 0)  # Jacobian infinity
        addend = pt
        while k:
            if k & 1:
                result = self._jacobian_add(result, addend)
            addend = self._jacobian_double(addend)
            k >>= 1
        return result

    def _jacobian_double(self, pt: Tuple[int, int, int]) -> Tuple[int, int, int]:
        x, y, z = pt
        p = self.p
        if z == 0 or y == 0:
            return (0, 1, 0)
        ysq = y * y % p
        s = 4 * x * ysq % p
        m = (3 * x * x + self.a * backend.powmod(z, 4, p)) % p
        nx = (m * m - 2 * s) % p
        ny = (m * (s - nx) - 8 * ysq * ysq) % p
        nz = 2 * y * z % p
        return (nx, ny, nz)

    def _jacobian_add(
        self, p1: Tuple[int, int, int], p2: Tuple[int, int, int]
    ) -> Tuple[int, int, int]:
        x1, y1, z1 = p1
        x2, y2, z2 = p2
        p = self.p
        if z1 == 0:
            return p2
        if z2 == 0:
            return p1
        z1sq = z1 * z1 % p
        z2sq = z2 * z2 % p
        u1 = x1 * z2sq % p
        u2 = x2 * z1sq % p
        s1 = y1 * z2sq * z2 % p
        s2 = y2 * z1sq * z1 % p
        if u1 == u2:
            if s1 != s2:
                return (0, 1, 0)
            return self._jacobian_double(p1)
        h = (u2 - u1) % p
        r = (s2 - s1) % p
        hsq = h * h % p
        hcu = hsq * h % p
        v = u1 * hsq % p
        nx = (r * r - hcu - 2 * v) % p
        ny = (r * (v - nx) - s1 * hcu) % p
        nz = h * z1 * z2 % p
        return (nx, ny, nz)

    def _from_jacobian(self, pt: Tuple[int, int, int]) -> Point:
        x, y, z = pt
        if z == 0:
            return None
        p = self.p
        zinv = mod_inverse(z, p)
        zinv_sq = zinv * zinv % p
        return (x * zinv_sq % p, y * zinv_sq * zinv % p)


class EllipticCurveGroup(Group):
    """Prime-order subgroup of an elliptic curve, as a :class:`Group`."""

    def __init__(
        self,
        params: CurveParams,
        verify: bool = True,
        counter: Optional[OperationCounter] = None,
    ):
        super().__init__(counter=counter or OperationCounter())
        if verify:
            params.verify()
        self._params = params
        self._curve = _CurveArithmetic(params.p, params.a)

    @property
    def params(self) -> CurveParams:
        return self._params

    @property
    def order(self) -> int:
        return self._params.n

    @property
    def element_bits(self) -> int:
        # Compressed point: x coordinate plus one sign bit.
        return self._params.p.bit_length() + 1

    @property
    def wire_bytes(self) -> int:
        # Compressed SEC-style encoding: 1 prefix byte + full x coordinate.
        # (element_bits rounds the *bit* count; the byte encoding pads x
        # to whole field bytes, so derive from the field size directly.)
        return (self._params.p.bit_length() + 7) // 8 + 1

    @property
    def security_bits(self) -> int:
        return self._params.security_bits

    @property
    def name(self) -> str:
        return self._params.name

    def generator(self) -> Element:
        return (self._params.gx, self._params.gy)

    def identity(self) -> Element:
        return None

    # In the multiplicative notation of the Group interface, "mul" is point
    # addition and "exp" is scalar multiplication.
    def mul(self, a: Point, b: Point) -> Point:
        self.counter.record_mul()
        return self._curve.add(a, b)

    def exp(self, a: Point, k: int) -> Point:
        k %= self._params.n
        self.counter.record_exp(self._params.n.bit_length())
        return self._curve.scalar_mul(a, k)

    def inv(self, a: Point) -> Point:
        self.counter.record_inv()
        return self._curve.negate(a)

    def eq(self, a: Point, b: Point) -> bool:
        return a == b

    def is_element(self, a: Element) -> bool:
        if a is None:
            return True
        if not (isinstance(a, tuple) and len(a) == 2):
            return False
        x, y = a
        p = self._params.p
        if not (
            isinstance(x, int) and isinstance(y, int)
            and 0 <= x < p and 0 <= y < p
        ):
            return False
        # Memoized: the on-curve test (and, for cofactor curves, a full
        # order-n scalar multiplication) is paid once per distinct point.
        return self._membership_cached(a, lambda: self._check_membership(a))

    def _check_membership(self, a: Tuple[int, int]) -> bool:
        x, y = a
        p = self._params.p
        rhs = (
            backend.powmod(x, 3, p) + self._params.a * x + self._params.b
        ) % p
        if backend.mulmod(y, y, p) != rhs:
            return False
        if self._params.h == 1:
            return True
        return self._curve.scalar_mul(a, self._params.n) is None

    def serialize(self, a: Point) -> bytes:
        byte_len = (self._params.p.bit_length() + 7) // 8
        if a is None:
            return b"\x00" * (byte_len + 1)
        x, y = a
        prefix = b"\x03" if y & 1 else b"\x02"
        return prefix + x.to_bytes(byte_len, "big")

    def deserialize(self, data: bytes) -> Point:
        byte_len = (self._params.p.bit_length() + 7) // 8
        if len(data) != byte_len + 1:
            raise ValueError("bad encoded point length")
        if data[0] == 0:
            return None
        if data[0] not in (2, 3):
            raise ValueError("bad point compression prefix")
        x = int.from_bytes(data[1:], "big")
        p = self._params.p
        rhs = (backend.powmod(x, 3, p) + self._params.a * x + self._params.b) % p
        if rhs != 0 and not is_quadratic_residue(rhs, p):
            raise ValueError("x is not on the curve")
        y = mod_sqrt(rhs, p)
        if (y & 1) != (data[0] & 1):
            y = p - y
        return (x, y)

    def __repr__(self) -> str:
        return f"EllipticCurveGroup({self._params.name})"
