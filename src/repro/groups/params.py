"""Convenience constructors tying security levels to concrete groups.

The paper's Fig. 3(a) compares DL and ECC instantiations at the NIST
equivalences (FIPS 140-2 IG): 80-bit ⇔ DL-1024 / ECC-160,
112-bit ⇔ DL-2048 / ECC-224, 128-bit ⇔ DL-3072 / ECC-256.
"""

from __future__ import annotations

from typing import Optional

from repro.groups.base import Group, OperationCounter
from repro.groups.curves import CURVE_FOR_SECURITY, get_curve
from repro.groups.dl import DLGroup
from repro.math.rng import RNG, SeededRNG

#: symmetric security level -> (DL modulus bits, curve name)
SECURITY_LEVELS = {
    80: (1024, "secp160r1"),
    112: (2048, "secp224r1"),
    128: (3072, "secp256r1"),
}


def make_dl_group(bits: int, counter: Optional[OperationCounter] = None) -> DLGroup:
    """The standardized DL group with a ``bits``-bit safe-prime modulus."""
    return DLGroup.standard(bits, counter=counter)


def make_ecc_group(name: str, counter: Optional[OperationCounter] = None) -> Group:
    """A verified standard elliptic curve group by curve name."""
    group = get_curve(name)
    group.attach_counter(counter)
    return group


def group_for_security_level(
    level: int, family: str, counter: Optional[OperationCounter] = None
) -> Group:
    """The paper's group for a symmetric security ``level`` and ``family``.

    ``family`` is ``"DL"`` or ``"ECC"``; ``level`` one of 80, 112, 128.
    """
    if level not in SECURITY_LEVELS:
        raise ValueError(f"unsupported level {level}; supported: {sorted(SECURITY_LEVELS)}")
    dl_bits, curve_name = SECURITY_LEVELS[level]
    family = family.upper()
    if family == "DL":
        return make_dl_group(dl_bits, counter=counter)
    if family == "ECC":
        return make_ecc_group(CURVE_FOR_SECURITY[level] if level in CURVE_FOR_SECURITY else curve_name, counter=counter)
    raise ValueError("family must be 'DL' or 'ECC'")


def make_test_group(
    bits: int = 64, seed: int = 0, counter: Optional[OperationCounter] = None
) -> DLGroup:
    """A small deterministic DL group for unit tests and examples.

    Not secure; exists so full protocol runs finish in milliseconds.
    """
    return DLGroup.random(bits, rng=SeededRNG(seed), counter=counter)
