"""Complete baseline systems the paper compares against.

:mod:`repro.baselines.ss_framework` assembles the paper's "SS framework"
comparator end to end: the same masked-gain phase 1, but phase 2 replaced
by secret-sharing-based multiparty ranking (Jónsson-style comparisons
over Shamir shares, executed by real message-passing parties).  Same
inputs and result interface as the main framework, so the two systems
are directly comparable — including the privacy property the SS baseline
*lacks*: every party learns every pairwise comparison outcome.
"""

from repro.baselines.ss_framework import SSFrameworkResult, SSGroupRankingFramework

__all__ = ["SSFrameworkResult", "SSGroupRankingFramework"]
