"""The paper's "SS framework" comparator, assembled end to end.

Section VII: "Since Jónsson's protocol does not deal with secure dot
product problem, we used our gain computation part and fed the result β
values to Jónsson's protocol."  This module does exactly that:

1. **Phase 1** — the same Ioannidis dot-product masking as the main
   framework (β = ρ·p + ρ_j), run pairwise between the initiator and
   each participant;
2. **Phase 2** — the distributed secret-sharing ranking protocol
   (:mod:`repro.sharing.protocol`): Shamir-share the β values, compare
   pairwise with the LSB gadget, open the comparison bits;
3. **Phase 3** — top-k participants submit to the initiator.

Result interface matches :class:`repro.core.framework.FrameworkResult`
where it can — and exposes what the main framework is designed to hide:
:attr:`SSFrameworkResult.public_ranking` is known to *every* party,
because step 2 opens all pairwise bits.  The integration tests compare
the two systems on identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.gain import (
    AttributeSchema,
    InitiatorInput,
    ParticipantInput,
    initiator_extended_vector,
    participant_extended_vector,
    to_unsigned,
)
from repro.dotproduct.ioannidis import DotProductProtocol
from repro.math.primes import next_prime
from repro.math.rng import RNG, SeededRNG
from repro.runtime.transcript import Transcript
from repro.sharing.protocol import run_distributed_ss_ranking


@dataclass
class SSFrameworkResult:
    """End-to-end outcome of the SS baseline."""

    ranks: Dict[int, int]
    selected: List[Tuple[int, int, Tuple[int, ...]]]
    betas: Dict[int, int]
    rounds: int
    transcript: Transcript            # the SS-ranking phase's messages
    #: The leak: the full participant->rank map is public to all parties.
    public_ranking: Dict[int, int] = None

    def selected_ids(self) -> List[int]:
        return [party_id for party_id, _, _ in self.selected]


class SSGroupRankingFramework:
    """Drop-in comparator for :class:`GroupRankingFramework`.

    Needs at least 3 participants (the GRR degree reduction requires
    ``2t+1 ≤ n`` with ``t ≥ 1``).
    """

    def __init__(
        self,
        schema: AttributeSchema,
        initiator_input: InitiatorInput,
        participant_inputs: List[ParticipantInput],
        k: int,
        rho_bits: int = 8,
        rng: Optional[RNG] = None,
    ):
        if len(participant_inputs) < 3:
            raise ValueError("the SS baseline needs at least 3 participants")
        if not 1 <= k <= len(participant_inputs):
            raise ValueError("k must be in [1, n]")
        self.schema = schema
        self.initiator_input = initiator_input
        self.participant_inputs = list(participant_inputs)
        self.k = k
        self.rho_bits = rho_bits
        self._rng = rng or SeededRNG(0)

    def run(
        self,
        faults=None,
        *,
        timeout_rounds: Optional[int] = None,
        max_retries: int = 2,
    ) -> SSFrameworkResult:
        """Run the baseline; ``faults``/``timeout_rounds``/``max_retries``
        are forwarded to the SS-ranking phase (phase 1 is pairwise with
        the initiator and runs outside the engine, so injection targets
        phase 2 — the distributed part the comparison is about)."""
        from repro.core.gain import beta_bit_length

        rng = self._rng
        schema = self.schema
        n = len(self.participant_inputs)
        beta_bits = beta_bit_length(
            schema.dimension, schema.value_bits, schema.weight_bits, self.rho_bits
        )
        field_prime = next_prime(1 << (beta_bits + 8))
        dot = DotProductProtocol(field_prime)

        # Phase 1: the same masked dot products as the main framework.
        rho = max(2, rng.randbits(self.rho_bits) | (1 << (self.rho_bits - 1)))
        extended_initiator = initiator_extended_vector(
            schema, self.initiator_input, rho
        )
        betas: Dict[int, int] = {}
        for j, secret_input in enumerate(self.participant_inputs, start=1):
            extended = participant_extended_vector(schema, secret_input)
            request, state = dot.bob_request(extended, rng)
            rho_j = rng.randrange(rho)
            response = dot.alice_respond(request, extended_initiator, rho_j)
            betas[j] = to_unsigned(dot.bob_recover(state, response), beta_bits)

        # Phase 2: distributed SS ranking over a field big enough for the
        # comparison precondition (β < p/2).
        ranking_prime = next_prime(1 << (beta_bits + 2))
        ss_run = run_distributed_ss_ranking(
            [betas[j] for j in sorted(betas)], ranking_prime, rng=rng,
            faults=faults, timeout_rounds=timeout_rounds, max_retries=max_retries,
        )

        # Phase 3: top-k submission.  In this baseline every rank is
        # already public, so "submission" only transfers the vectors.
        selected = [
            (j, ss_run.ranks[j], self.participant_inputs[j - 1].values)
            for j in sorted(ss_run.ranks)
            if ss_run.ranks[j] <= self.k
        ]
        selected.sort(key=lambda item: (item[1], item[0]))
        return SSFrameworkResult(
            ranks=ss_run.ranks,
            selected=selected,
            betas=betas,
            rounds=ss_run.rounds,
            transcript=ss_run.transcript,
            public_ranking=dict(ss_run.ranks),
        )
