"""Anonymous group messaging (paper references [13, 18], Section II).

The framework's identity-unlinkable shuffle is, by the authors' own
account, the Brickell-Shmatikov anonymous-messaging idea recast as a
sorting step.  This package implements the underlying primitive in its
own right — a decryption mix-net over distributed ElGamal — and the full
anonymous data-collection protocol on the runtime engine: ``n`` members
submit messages to a collector such that the collector (and up to
``n-2`` colluding members) learns the multiset of messages but cannot
link any message to its sender.
"""

from repro.anonmsg.encoding import decode_message, encode_message
from repro.anonmsg.mixnet import DecryptionMixnet
from repro.anonmsg.collection import AnonymousCollection, run_anonymous_collection

__all__ = [
    "AnonymousCollection",
    "DecryptionMixnet",
    "decode_message",
    "encode_message",
    "run_anonymous_collection",
]
