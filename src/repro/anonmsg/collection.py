"""Anonymous data collection as a runtime-engine protocol.

Roles: ``n`` members (ids 1..n) each holding one private integer
message, and a collector (id 0).  Flow:

1. every member publishes an ElGamal key share (the collector holds no
   share — it must not be able to decrypt alone);
2. every member encrypts her group-encoded message under the joint key
   and sends it to member 1;
3. the batch passes the decryption mix-net chain 1 → 2 → … → n;
4. member n opens the outputs and forwards the shuffled plaintext
   multiset to the collector.

The collector learns exactly the multiset; linking a message to its
sender requires corrupting *every* member (each honest hop re-shuffles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.anonmsg.encoding import decode_message, encode_message
from repro.anonmsg.mixnet import DecryptionMixnet
from repro.groups.dl import DLGroup
from repro.math.rng import RNG, SeededRNG
from repro.runtime.engine import Engine
from repro.runtime.party import Party
from repro.runtime.transcript import Transcript

TAG_SHARE = "anon-share"
TAG_SUBMIT = "anon-submit"
TAG_BATCH = "anon-batch"
TAG_OUTPUT = "anon-output"


class CollectorParty(Party):
    """Receives the shuffled plaintext multiset."""

    def __init__(self, group: DLGroup, num_members: int, rng: RNG):
        super().__init__(0, rng)
        self.group = group
        self.num_members = num_members

    def protocol(self):
        message = yield from self.recv(self.num_members, TAG_OUTPUT)
        self.output = sorted(
            decode_message(element, self.group) for element in message.payload
        )


class MemberParty(Party):
    """One member: key share, submission, and a mix hop."""

    def __init__(self, party_id: int, group: DLGroup, num_members: int,
                 message: int, rng: RNG):
        super().__init__(party_id, rng)
        self.group = group
        self.num_members = num_members
        self.message = message

    def protocol(self):
        group = self.group
        members = list(range(1, self.num_members + 1))
        others = [m for m in members if m != self.party_id]

        # 1. Distributed keying (shares only; ZKPs as in the framework
        #    could be layered on; kept lean here to spotlight the mixing).
        secret = group.random_exponent(self.rng)
        public = group.exp_generator(secret)
        self.broadcast(others, TAG_SHARE, public, size_bits=group.element_bits)
        publics = yield from self.recv_from_all(others, TAG_SHARE)
        publics[self.party_id] = public
        mixnet = DecryptionMixnet(group, publics)

        # 2. Encrypt and submit to the head of the chain.
        encoded = encode_message(self.message, group)
        ciphertext = mixnet.submit(encoded, self.rng)
        if self.party_id == 1:
            batch = [ciphertext]
            received = yield from self.recv_from_all(others, TAG_SUBMIT)
            for sender in sorted(received):
                batch.append(received[sender])
        else:
            self.send(1, TAG_SUBMIT, ciphertext,
                      size_bits=2 * group.element_bits)
            upstream = yield from self.recv(self.party_id - 1, TAG_BATCH)
            batch = upstream.payload

        # 3. This member's mix hop.
        batch = mixnet.mix_hop(batch, self.party_id, secret, self.rng)

        # 4. Forward — or open and deliver if last.
        batch_bits = len(batch) * 2 * group.element_bits
        if self.party_id < self.num_members:
            self.send(self.party_id + 1, TAG_BATCH, batch, size_bits=batch_bits)
        else:
            outputs = mixnet.open_outputs(batch)
            self.send(0, TAG_OUTPUT, outputs,
                      size_bits=len(outputs) * group.element_bits)
        self.output = "mixed"


@dataclass
class AnonymousCollection:
    """Result of one anonymous-collection run."""

    messages: List[int]
    rounds: int
    transcript: Transcript


def run_anonymous_collection(
    group: DLGroup, messages: List[int], rng: Optional[RNG] = None
) -> AnonymousCollection:
    """Convenience one-call runner: returns the collector's view."""
    rng = rng or SeededRNG(0)
    n = len(messages)
    if n < 2:
        raise ValueError("anonymity needs at least two members")
    engine = Engine(metered_groups=[group])
    engine.add_party(CollectorParty(group, n, _fork(rng, "collector")))
    for member_id, message in enumerate(messages, start=1):
        engine.add_party(
            MemberParty(member_id, group, n, message, _fork(rng, f"m{member_id}"))
        )
    outputs = engine.run()
    return AnonymousCollection(
        messages=outputs[0],
        rounds=engine.transcript.rounds,
        transcript=engine.transcript,
    )


def _fork(rng: RNG, label: str) -> RNG:
    fork = getattr(rng, "fork", None)
    return fork(label) if callable(fork) else rng
