"""Anonymous data collection as a runtime-engine protocol.

Roles: ``n`` members (ids 1..n) each holding one private integer
message, and a collector (id 0).  Flow:

1. every member publishes an ElGamal key share (the collector holds no
   share — it must not be able to decrypt alone);
2. every member encrypts her group-encoded message under the joint key
   and sends it to member 1;
3. the batch passes the decryption mix-net chain 1 → 2 → … → n;
4. member n opens the outputs and forwards the shuffled plaintext
   multiset to the collector.

The collector learns exactly the multiset; linking a message to its
sender requires corrupting *every* member (each honest hop re-shuffles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.anonmsg.encoding import decode_message, encode_message
from repro.anonmsg.mixnet import DecryptionMixnet, StreamingMixHop
from repro.groups.dl import DLGroup
from repro.math import backend as arith_backend
from repro.math.rng import RNG, SeededRNG
from repro.runtime.channels import WireStats, WireTransport
from repro.runtime.engine import Engine
from repro.runtime.errors import ProtocolAbort
from repro.runtime.party import Party
from repro.runtime.transcript import Transcript

TAG_SHARE = "anon-share"
TAG_SUBMIT = "anon-submit"
TAG_BATCH = "anon-batch"
TAG_CHUNK = "anon-chunk"
TAG_OUTPUT = "anon-output"


class CollectorParty(Party):
    """Receives the shuffled plaintext multiset."""

    def __init__(self, group: DLGroup, num_members: int, rng: RNG):
        super().__init__(0, rng)
        self.group = group
        self.num_members = num_members

    def protocol(self):
        message = yield from self.recv(self.num_members, TAG_OUTPUT)
        self.output = sorted(
            decode_message(element, self.group) for element in message.payload
        )


class MemberParty(Party):
    """One member: key share, submission, and a mix hop.

    ``stream_chunk > 0`` turns on the streaming pipeline: each hop's
    batch travels as ceil(n / stream_chunk)-many ``TAG_CHUNK`` messages,
    emitted one per round, and the receiving member peels +
    re-randomizes each chunk the round it arrives — so hop ``i+1`` is
    already decrypting chunk 1 while hop ``i`` is still emitting chunk
    2.  The permutation stays a whole-batch barrier (see
    :class:`~repro.anonmsg.mixnet.StreamingMixHop`), and the collector's
    multiset is identical to the one-shot pipeline's for the same seed.
    """

    def __init__(self, party_id: int, group: DLGroup, num_members: int,
                 message: int, rng: RNG, stream_chunk: int = 0):
        super().__init__(party_id, rng)
        self.group = group
        self.num_members = num_members
        self.message = message
        self.stream_chunk = stream_chunk
        # Engine round at each chunk absorption (pipeline-overlap tests).
        self.absorb_rounds: List[int] = []

    def _chunk_bounds(self, total: int) -> List[tuple]:
        size = self.stream_chunk
        return [(lo, min(lo + size, total)) for lo in range(0, total, size)]

    def _send_stream(self, dst: int, batch):
        """Emit ``batch`` as staggered chunks, one round apart."""
        bounds = self._chunk_bounds(len(batch))
        for index, (lo, hi) in enumerate(bounds):
            chunk = batch[lo:hi]
            self.send(
                dst, TAG_CHUNK, (index, chunk),
                size_bits=self.mixnet.batch_wire_bits(len(chunk)) + 32,
            )
            if index < len(bounds) - 1:
                yield from self.pause()

    def _recv_stream(self, hop: StreamingMixHop):
        """Absorb the upstream hop's chunks as they arrive."""
        src = self.party_id - 1
        bounds = self._chunk_bounds(self.num_members)
        for index in range(len(bounds)):
            message = yield from self.recv(src, TAG_CHUNK)
            payload = message.payload
            if not (
                isinstance(payload, tuple) and len(payload) == 2
                and payload[0] == index and isinstance(payload[1], list)
            ):
                raise ProtocolAbort(
                    f"mix stream from P{src} malformed or out of sequence",
                    blamed=src, phase="mixing",
                )
            hop.absorb(payload[1], self.rng)
            self.absorb_rounds.append(self._engine.round)

    def protocol(self):
        group = self.group
        members = list(range(1, self.num_members + 1))
        others = [m for m in members if m != self.party_id]

        # 1. Distributed keying (shares only; ZKPs as in the framework
        #    could be layered on; kept lean here to spotlight the mixing).
        secret = group.random_exponent(self.rng)
        public = group.exp_generator(secret)
        self.broadcast(others, TAG_SHARE, public,
                       size_bits=8 * group.wire_bytes)
        publics = yield from self.recv_from_all(others, TAG_SHARE)
        publics[self.party_id] = public
        mixnet = self.mixnet = DecryptionMixnet(group, publics)

        # 2. Encrypt and submit to the head of the chain.
        encoded = encode_message(self.message, group)
        ciphertext = mixnet.submit(encoded, self.rng)
        streaming = self.stream_chunk > 0
        if self.party_id == 1:
            batch = [ciphertext]
            received = yield from self.recv_from_all(others, TAG_SUBMIT)
            for sender in sorted(received):
                batch.append(received[sender])
        else:
            self.send(1, TAG_SUBMIT, ciphertext,
                      size_bits=mixnet.batch_wire_bits(1))
            if streaming:
                hop = StreamingMixHop(
                    mixnet, self.party_id, secret,
                    validate_from=self.party_id - 1,
                )
                yield from self._recv_stream(hop)
                batch = hop.emit(self.rng)
            else:
                upstream = yield from self.recv(self.party_id - 1, TAG_BATCH)
                batch = upstream.payload

        # 3. This member's mix hop (the head always has the full batch,
        #    so it processes one-shot even when streaming downstream).
        if self.party_id == 1 or not streaming:
            batch = mixnet.mix_hop(batch, self.party_id, secret, self.rng)

        # 4. Forward — or open and deliver if last.
        batch_bits = mixnet.batch_wire_bits(len(batch))
        if self.party_id < self.num_members:
            if streaming:
                yield from self._send_stream(self.party_id + 1, batch)
            else:
                self.send(self.party_id + 1, TAG_BATCH, batch,
                          size_bits=batch_bits)
        else:
            outputs = mixnet.open_outputs(batch)
            self.send(0, TAG_OUTPUT, outputs,
                      size_bits=len(outputs) * 8 * group.wire_bytes)
        self.output = "mixed"


@dataclass
class AnonymousCollection:
    """Result of one anonymous-collection run."""

    messages: List[int]
    rounds: int
    transcript: Transcript
    wire_stats: Optional[WireStats] = None


def run_anonymous_collection(
    group: DLGroup, messages: List[int], rng: Optional[RNG] = None,
    *, stream_chunk: int = 0, wire: str = "declared",
    wire_codec: str = "v2", coalesce: bool = True, backend: str = "auto",
) -> AnonymousCollection:
    """Convenience one-call runner: returns the collector's view.

    ``stream_chunk > 0`` streams each hop's batch in chunks of that many
    ciphertexts (same multiset, pipelined hops).  ``wire`` selects the
    communication accounting exactly as in
    :class:`~repro.core.parties.FrameworkConfig`: ``"declared"`` keeps
    the analytic sizes above, ``"measured"``/``"conformance"`` route
    every message through a :class:`~repro.runtime.channels.WireTransport`
    (codec ``wire_codec``, per-round batching per ``coalesce``).
    ``backend`` scopes the run to an arithmetic backend
    (:mod:`repro.math.backend`; ``"auto"`` keeps the active one) —
    transcript-equivalent, so the collected multiset, round count, and
    wire bytes are identical whichever backend runs."""
    rng = rng or SeededRNG(0)
    n = len(messages)
    if n < 2:
        raise ValueError("anonymity needs at least two members")
    if stream_chunk < 0:
        raise ValueError("stream_chunk must be non-negative")
    transport = None
    if wire != "declared":
        transport = WireTransport(group, codec=wire_codec,
                                  coalesce=coalesce, mode=wire)
    with arith_backend.use_backend(backend):
        engine = Engine(metered_groups=[group], wire=transport)
        engine.add_party(CollectorParty(group, n, _fork(rng, "collector")))
        for member_id, message in enumerate(messages, start=1):
            engine.add_party(
                MemberParty(member_id, group, n, message,
                            _fork(rng, f"m{member_id}"),
                            stream_chunk=stream_chunk)
            )
        outputs = engine.run()
    return AnonymousCollection(
        messages=outputs[0],
        rounds=engine.transcript.rounds,
        transcript=engine.transcript,
        wire_stats=transport.stats() if transport is not None else None,
    )


def _fork(rng: RNG, label: str) -> RNG:
    fork = getattr(rng, "fork", None)
    return fork(label) if callable(fork) else rng
