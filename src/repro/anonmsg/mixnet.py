"""A decryption mix-net over distributed (multiplicative) ElGamal.

Ciphertexts encrypted under the joint key ``y = Π y_i`` pass through
the members in turn; member ``i``:

1. peels her layer (``c → c / c'^{x_i}``);
2. re-randomizes under the *remaining* joint key ``Π_{j>i} y_j``
   (multiply in a fresh encryption of 1), so her output ciphertexts are
   statistically unlinkable to her input ciphertexts;
3. permutes the batch.

After the last member the plaintexts emerge — a uniformly shuffled
multiset.  Unlinkability holds against any coalition missing at least
one honest mix hop (the Brickell-Shmatikov property the paper's
framework inherits: n−2 colluders tolerated).

Unlike the framework's shuffle (exponent re-randomization, preserving
only the zero predicate), a mix-net must deliver the *exact* plaintexts,
hence re-randomization by multiplying in ``E(1)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.crypto.distkey import DistributedKey
from repro.crypto.elgamal import Ciphertext, ElGamal
from repro.groups.base import Element, Group
from repro.math.rng import RNG
from repro.runtime.errors import ProtocolAbort

if TYPE_CHECKING:  # pragma: no cover
    from repro.crypto.precompute import RandomnessPool
    from repro.runtime.parallel import WorkerPool


class DecryptionMixnet:
    """Hop-by-hop machinery; the parties drive it via :meth:`mix_hop`."""

    def __init__(self, group: Group, member_publics: Dict[int, Element]):
        """``member_publics`` maps member id -> published key share."""
        self.group = group
        self.scheme = ElGamal(group)
        self._distkey = DistributedKey(group)
        for member_id, public in sorted(member_publics.items()):
            self._distkey.register_public(member_id, public)
        self.member_ids = sorted(member_publics)

    def joint_public_key(self) -> Element:
        return self._distkey.joint_public_key()

    def batch_wire_bits(self, count: int) -> int:
        """Declared wire size of a ``count``-ciphertext batch.

        Sized from the group's canonical encoded element width
        (:attr:`~repro.groups.base.Group.wire_bytes`, two element bodies
        per ciphertext) rather than raw ``element_bits``, so declared
        sizes match what the measured wire path serializes and the
        conformance cross-check holds for chain-hop transfers.
        """
        return count * 2 * 8 * self.group.wire_bytes

    def submit(self, plaintext_element: Element, rng: RNG) -> Ciphertext:
        """Encrypt a group-encoded message under the joint key."""
        return self.scheme.encrypt(plaintext_element, self.joint_public_key(), rng)

    def remaining_key_after(self, member_id: int) -> Element:
        """``Π y_j`` over members ordered after ``member_id``."""
        later = [m for m in self.member_ids if m > member_id]
        return self._distkey.partial_public_key(later)

    def without_member(self, member_id: int) -> "DecryptionMixnet":
        """A fresh mix-net over the surviving members (dropout recovery).

        The dead member's key share is gone, so the survivors must
        re-key and the senders re-submit under the new joint key — the
        same restart the ranking framework performs when a chain member
        crashes mid-shuffle.
        """
        survivors = {
            m: self._distkey.public_share(m)
            for m in self.member_ids
            if m != member_id
        }
        if len(survivors) < 1:
            raise ValueError("cannot drop the last mix member")
        return DecryptionMixnet(self.group, survivors)

    def validate_batch(
        self, ciphertexts: Sequence[Ciphertext], src: int, *,
        expected_size: Optional[int] = None,
    ) -> None:
        """Validated-abort check on a batch arriving from mix member ``src``.

        A hop that drops, adds, or corrupts ciphertexts (components
        outside the group) is blamed by id; downstream members never
        touch an invalid batch.
        """
        if expected_size is not None and len(ciphertexts) != expected_size:
            raise ProtocolAbort(
                f"mix batch from P{src} has {len(ciphertexts)} ciphertexts, "
                f"expected {expected_size}",
                blamed=src, phase="mixing",
            )
        for ciphertext in ciphertexts:
            if not (
                isinstance(ciphertext, Ciphertext)
                and self.group.is_element(ciphertext.c1)
                and self.group.is_element(ciphertext.c2)
            ):
                raise ProtocolAbort(
                    f"mix batch from P{src} contains a ciphertext with "
                    "components outside the group",
                    blamed=src, phase="mixing",
                )

    def mix_hop(
        self,
        ciphertexts: Sequence[Ciphertext],
        member_id: int,
        secret: int,
        rng: RNG,
        *,
        pool: Optional["RandomnessPool"] = None,
        executor: Optional["WorkerPool"] = None,
        validate_from: Optional[int] = None,
    ) -> List[Ciphertext]:
        """One member's peel + re-randomize + permute.

        ``pool`` (keyed to this hop's *remaining* joint key) serves the
        re-randomization pairs offline; ``executor`` fans the peel +
        re-randomize work out across worker slices with pre-drawn
        randomness, keeping the permutation draw on this side so the RNG
        consumption — and hence the transcript — matches the serial hop
        byte for byte.  ``validate_from`` (the previous hop's id) turns
        on the validated-abort batch check before any peeling happens.
        """
        if validate_from is not None:
            self.validate_batch(ciphertexts, validate_from)
        processed = self.peel_and_rerandomize(
            ciphertexts, member_id, secret, rng, pool=pool, executor=executor
        )
        rng.shuffle(processed)
        return processed

    def peel_and_rerandomize(
        self,
        ciphertexts: Sequence[Ciphertext],
        member_id: int,
        secret: int,
        rng: RNG,
        *,
        pool: Optional["RandomnessPool"] = None,
        executor: Optional["WorkerPool"] = None,
    ) -> List[Ciphertext]:
        """The exponentiation-heavy part of a hop, without the permutation.

        Safe to call incrementally on consecutive chunks of one batch
        (:class:`StreamingMixHop` does exactly that): randomness is drawn
        in ciphertext order, so chunked and whole-batch processing
        consume the pool/RNG identically.
        """
        remaining = self.remaining_key_after(member_id)
        is_last = member_id == self.member_ids[-1]
        if executor is not None and executor.parallel:
            return self._mix_hop_parallel(
                ciphertexts, secret, remaining, is_last, rng, pool, executor
            )
        scheme = (
            ElGamal(self.group, pool=pool) if pool is not None else self.scheme
        )
        processed = []
        for ciphertext in ciphertexts:
            # repro-lint: ignore[R-GUARD] -- hot hop path; batches are
            # membership-checked at receipt (mix_hop validate_from /
            # StreamingMixHop.absorb) before any peeling
            peeled = self._distkey.peel_layer(ciphertext, secret)
            if not is_last:
                peeled = scheme.rerandomize(peeled, remaining, rng)
            processed.append(peeled)
        return processed

    def _mix_hop_parallel(
        self,
        ciphertexts: Sequence[Ciphertext],
        secret: int,
        remaining: Element,
        is_last: bool,
        rng: RNG,
        pool: Optional["RandomnessPool"],
        executor: "WorkerPool",
    ) -> List[Ciphertext]:
        from repro.runtime.parallel import MixHopJob, evaluate_mix_hop_job

        # Pre-draw every re-randomizer in serial order.  A pool keyed to
        # the remaining joint key already holds the (g^r, y^r) *elements*,
        # so the jobs ship those and workers re-encrypt with two
        # multiplications per ciphertext; without a pool the jobs carry
        # the bare exponents and workers recompute the powers.  Either
        # way the elements match the serial hop's exactly.
        rerandomizers: Optional[List[int]] = None
        pairs: Optional[List[Tuple[Element, Element]]] = None
        if not is_last:
            if pool is not None and pool.matches_key(remaining):
                pairs = [
                    (pair.g_r, pair.y_r)
                    for pair in (pool.take() for _ in ciphertexts)
                ]
            else:
                rerandomizers = [
                    self.group.random_exponent(rng) for _ in ciphertexts
                ]
        slice_count = min(executor.workers, max(1, len(ciphertexts)))
        bounds = [
            (len(ciphertexts) * k // slice_count,
             len(ciphertexts) * (k + 1) // slice_count)
            for k in range(slice_count)
        ]
        jobs = [
            MixHopJob(
                group=self.group,
                ciphertexts=tuple(ciphertexts[lo:hi]),
                secret=secret,
                remaining_key=remaining,
                rerandomizers=(
                    tuple(rerandomizers[lo:hi]) if rerandomizers is not None else None
                ),
                rerandomizer_pairs=(
                    tuple(pairs[lo:hi]) if pairs is not None else None
                ),
            )
            for lo, hi in bounds
            if hi > lo
        ]
        processed: List[Ciphertext] = []
        for chunk, counter in executor.map(evaluate_mix_hop_job, jobs):
            processed.extend(chunk)
            self.group.counter.merge(counter)
        return processed

    def open_outputs(self, ciphertexts: Sequence[Ciphertext]) -> List[Element]:
        """After every hop ran, the c1 components are the plaintexts."""
        return [ciphertext.c1 for ciphertext in ciphertexts]

    # -- one-process reference (tests, examples) ------------------------------
    def mix_all(
        self,
        ciphertexts: Sequence[Ciphertext],
        secrets: Dict[int, int],
        rng: RNG,
    ) -> List[Element]:
        current = list(ciphertexts)
        for member_id in self.member_ids:
            current = self.mix_hop(current, member_id, secrets[member_id], rng)
        return self.open_outputs(current)


class StreamingMixHop:
    """One member's hop, fed chunk by chunk as the upstream hop emits.

    The exponentiation-heavy peel + re-randomize runs per chunk in
    :meth:`absorb`, so it overlaps the upstream member's (staggered)
    emission; the permutation is a whole-batch barrier in :meth:`emit` —
    shuffling chunk-locally would let an observer bound every output's
    source to one chunk, gutting the unlinkability the hop exists for.

    Randomness is consumed in global ciphertext order across chunks,
    so a streamed hop produces exactly the ciphertexts (and the same
    permutation) the one-shot :meth:`DecryptionMixnet.mix_hop` would.
    """

    def __init__(
        self,
        mixnet: DecryptionMixnet,
        member_id: int,
        secret: int,
        *,
        pool: Optional["RandomnessPool"] = None,
        executor: Optional["WorkerPool"] = None,
        validate_from: Optional[int] = None,
    ):
        self.mixnet = mixnet
        self.member_id = member_id
        self.secret = secret
        self.pool = pool
        self.executor = executor
        self.validate_from = validate_from
        self.absorbed = 0
        self._processed: List[Ciphertext] = []
        self._emitted = False

    def absorb(self, chunk: Sequence[Ciphertext], rng: RNG) -> None:
        """Peel + re-randomize one arriving chunk (order-preserving)."""
        if self._emitted:
            raise ValueError("cannot absorb after emit")
        if self.validate_from is not None:
            self.mixnet.validate_batch(chunk, self.validate_from)
        self._processed.extend(
            self.mixnet.peel_and_rerandomize(
                chunk, self.member_id, self.secret, rng,
                pool=self.pool, executor=self.executor,
            )
        )
        self.absorbed += len(chunk)

    def emit(self, rng: RNG) -> List[Ciphertext]:
        """Whole-batch permutation barrier; returns the hop's output."""
        self._emitted = True
        processed = self._processed
        rng.shuffle(processed)
        return processed
