"""Encoding integers as elements of a safe-prime DL group.

For ``p = 2q + 1`` with ``p ≡ 3 (mod 4)``, exactly one of ``m`` and
``p − m`` is a quadratic residue (because ``-1`` is a non-residue), so

    encode(m) = m        if m is a QR mod p
              = p − m    otherwise

injectively maps ``m ∈ [1, q]`` into the QR subgroup, and

    decode(e) = e        if e ≤ q
              = p − e    otherwise

inverts it.  This is the standard message embedding for multiplicative
ElGamal over safe-prime groups; elliptic-curve groups would need
try-and-increment and are not supported here.
"""

from __future__ import annotations

from repro.groups.dl import DLGroup
from repro.math.modular import jacobi_symbol


def encode_message(message: int, group: DLGroup) -> int:
    """Embed ``message ∈ [1, q]`` as a quadratic residue mod ``p``."""
    if not isinstance(group, DLGroup):
        raise TypeError("message encoding requires a safe-prime DL group")
    p = group.modulus
    if p % 4 != 3:
        raise ValueError("encoding needs p ≡ 3 (mod 4)")
    if not 1 <= message <= group.order:
        raise ValueError(f"message must lie in [1, {group.order}]")
    if jacobi_symbol(message, p) == 1:
        return message
    return p - message


def decode_message(element: int, group: DLGroup) -> int:
    """Invert :func:`encode_message`."""
    if not isinstance(group, DLGroup):
        raise TypeError("message decoding requires a safe-prime DL group")
    p = group.modulus
    if not 0 < element < p:
        raise ValueError("element out of range")
    return element if element <= group.order else p - element
