"""Flat vs hierarchical (sharded) ranking at the crossover bench point.

Runs the full framework at n=64 twice over the same 64-bit test DL
group — once flat, once with ``shard_size=16`` — and compares the two
costs the sharding exists to cut:

* **group multiplications** — ``total_participant_multiplications()``,
  the protocol's computation currency (the aggregation layer's *field*
  multiplications are a different, far cheaper unit and are reported
  separately);
* **wire bits** — ``transcript.total_bits``, which for the sharded run
  already includes the champion-aggregation round's field messages
  (merged as the synthetic ``shard-aggregate`` transcript round).

Acceptance bars (ISSUE 8): the sharded run must beat flat by ≥3x on
both metrics, and the measured counts must agree with the symbolic
``CrossoverModel`` within documented constant factors.  The model
counts abstract units (every group multiplication equally, analytic
ciphertext sizes), the run counts concrete ones (multi-exp ladders,
wire framing), so exact equality is not expected; the band below is
the observed envelope with ~3x headroom on each side.

Emits machine-readable ``results/BENCH_sharded.json``.  With
``REPRO_BENCH_ENFORCE=1`` the measured speedups are additionally gated
against the committed numbers minus a relative margin, so an erosion
of the sharding win fails the nightly even while still above 3x.
Marked ``perf``: not part of tier-1.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.harness import RESULTS_DIR, write_result
from repro.analysis.symbolic import CrossoverModel
from repro.core.framework import FrameworkConfig, GroupRankingFramework
from repro.core.gain import AttributeSchema, InitiatorInput, ParticipantInput
from repro.groups.params import make_test_group
from repro.math.rng import SeededRNG

pytestmark = pytest.mark.perf

N = 64
K = 2
SHARD_SIZE = 16
MIN_SPEEDUP = 3.0
#: Measured/modeled count ratio must stay inside this band.  Observed
#: constants on the committed run: 1.02–1.10 on multiplications and
#: flat bits, 1.28 on sharded bits (the binary search took 14 probes
#: where the expected-case estimate says 5, inflating the aggregation
#: term); the band leaves ~2x headroom on each side.
MODEL_BAND = (0.5, 2.5)
#: Enforce mode: fail when a speedup drops below committed × (1 − this).
REGRESSION_MARGIN = 0.20


def _framework(shard_size, group):
    schema = AttributeSchema(
        names=("age", "pressure", "friends", "income"),
        num_equal=2, value_bits=6, weight_bits=4,
    )
    initiator = InitiatorInput.create(
        schema, criterion=[35, 20, 0, 0], weights=[3, 5, 2, 7]
    )
    rng = SeededRNG(19)
    bound = 1 << schema.value_bits
    participants = [
        ParticipantInput.create(
            schema, [rng.randrange(bound) for _ in range(schema.dimension)]
        )
        for _ in range(N)
    ]
    config = FrameworkConfig(
        group=group, schema=schema, num_participants=N, k=K, rho_bits=8,
        shard_size=shard_size,
    )
    return config, GroupRankingFramework(
        config, initiator, participants, rng=SeededRNG(5)
    )


def _timed_run(shard_size, group):
    config, framework = _framework(shard_size, group)
    start = time.perf_counter()
    result = framework.run()
    return config, framework, result, time.perf_counter() - start


def test_sharded_vs_flat_speedup():
    group = make_test_group()
    config, sharded_fw, sharded, sharded_s = _timed_run(SHARD_SIZE, group)
    _, flat_fw, flat, flat_s = _timed_run(0, group)

    # Same protocol, same answers: one global ρ means β values (and
    # therefore the top-k winners) are byte-identical across modes.
    assert flat.betas == sharded.betas
    flat_winners = sorted(j for j, r in flat.ranks.items() if r <= K)
    sharded_winners = sorted(j for j, r in sharded.ranks.items() if r <= K)
    assert flat_winners == sharded_winners
    assert flat_fw.check_result(flat) == []
    assert sharded_fw.check_result(sharded) == []

    flat_mults = flat.total_participant_multiplications()
    sharded_mults = sharded.total_participant_multiplications()
    flat_bits = flat.transcript.total_bits
    sharded_bits = sharded.transcript.total_bits
    mult_speedup = flat_mults / sharded_mults
    bit_speedup = flat_bits / sharded_bits

    model = CrossoverModel(
        SHARD_SIZE, config.beta_bits, group.order.bit_length(), K,
        ciphertext_bits=2 * group.element_bits,
    )
    agreement = {
        "flat_multiplications": flat_mults
        / model.evaluate("multiplications", N, sharded=False),
        "sharded_multiplications": sharded_mults
        / model.evaluate("multiplications", N, sharded=True),
        "flat_bits": flat_bits / model.evaluate("bits", N, sharded=False),
        "sharded_bits": sharded_bits / model.evaluate("bits", N, sharded=True),
    }
    crossovers = {
        metric: model.crossover(metric) for metric in ("multiplications", "bits")
    }

    aggregation = sharded.aggregation
    payload = {
        "bench": "sharded_vs_flat",
        "n": N,
        "k": K,
        "shard_size": SHARD_SIZE,
        "group": group.name,
        "beta_bits": config.beta_bits,
        "flat": {
            "multiplications": flat_mults,
            "bits": flat_bits,
            "seconds": round(flat_s, 2),
        },
        "sharded": {
            "multiplications": sharded_mults,
            "bits": sharded_bits,
            "seconds": round(sharded_s, 2),
            "shard_sizes": sharded.shard_sizes,
            "aggregation_field_multiplications": aggregation.metrics.multiplications,
            "aggregation_bits": sharded.aggregation_bits,
            "aggregation_field_bits": aggregation.field_bits,
            "aggregation_used_fallback": aggregation.used_fallback,
        },
        "multiplication_speedup": round(mult_speedup, 2),
        "bit_speedup": round(bit_speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "model_agreement": {k: round(v, 3) for k, v in agreement.items()},
        "model_band": MODEL_BAND,
        "model_crossover": crossovers,
        "model_predicted_speedup": {
            "multiplications": round(model.speedup("multiplications", N), 2),
            "bits": round(model.speedup("bits", N), 2),
        },
    }

    committed_path = RESULTS_DIR / "BENCH_sharded.json"
    committed = (
        json.loads(committed_path.read_text()) if committed_path.exists() else {}
    )
    write_result("BENCH_sharded", json.dumps(payload, indent=2), suffix="json")

    # Headline gates: ≥3x on both currencies.
    assert mult_speedup >= MIN_SPEEDUP, payload
    assert bit_speedup >= MIN_SPEEDUP, payload

    # The symbolic model must track every measured count within the
    # documented constant-factor band, and must place the crossover at
    # or below the bench point (sharding already winning at n=64).
    for name, ratio in agreement.items():
        assert MODEL_BAND[0] <= ratio <= MODEL_BAND[1], (name, ratio)
    for metric, crossover in crossovers.items():
        assert crossover is not None and crossover <= N, (metric, crossover)

    if os.environ.get("REPRO_BENCH_ENFORCE", "") == "1" and committed:
        for key, measured in (
            ("multiplication_speedup", mult_speedup),
            ("bit_speedup", bit_speedup),
        ):
            baseline = committed.get(key)
            if baseline is None:
                continue
            floor = baseline * (1.0 - REGRESSION_MARGIN)
            assert measured >= floor, (
                f"{key} regressed: {measured:.2f} vs committed "
                f"{baseline:.2f} (floor {floor:.2f})"
            )
