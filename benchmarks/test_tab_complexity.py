"""TAB-VIB: regenerate the Section VI-B complexity comparison.

The paper's efficiency section compares, per participant:

* computation — ours ``O(l²n + ln²λ)`` group multiplications vs the
  comparison-based SS sort's ``O(l·t·n²(log n)²)`` (→ ``O(l·n³(log n)²)``
  at ``t = n/2``) integer multiplications;
* rounds — ours ``O(n)`` vs Jónsson's ``O((279l+5)·n(log n)²)``;
* communication — ours ``O(l·S_c·n²)`` bits.

This bench prints the concrete numbers at the paper's operating point
and checks the claimed asymptotic relationships numerically.
"""

import pytest

from benchmarks.harness import PAPER_DEFAULTS, counting_run, growth_exponent, write_result
from repro.analysis.complexity import (
    framework_participant_bits,
    framework_participant_cost,
    framework_round_count,
    ss_framework_participant_bits,
    ss_framework_participant_cost,
    ss_framework_round_count,
)
from repro.core.gain import beta_bit_length

L = beta_bit_length(PAPER_DEFAULTS["m"], PAPER_DEFAULTS["d1"],
                    PAPER_DEFAULTS["d2"], PAPER_DEFAULTS["h"])
LAMBDA = 160  # ECC-160 exponent size, the paper's headline instantiation


def build_table():
    rows = []
    header = (
        f"{'n':>4} | {'ours mults':>14} | {'SS mults':>16} | "
        f"{'ours rounds':>11} | {'SS rounds':>12} | {'ours Mbit':>10}"
    )
    rows.append("TAB-VIB: Section VI-B complexity comparison "
                f"(l={L}, λ={LAMBDA}, S_c=2·161 bits)")
    rows.append("-" * len(header))
    rows.append(header)
    rows.append("-" * len(header))
    ns = [10, 25, 50, 100]
    data = {}
    for n in ns:
        ours = framework_participant_cost(n, L, LAMBDA).total
        ss = ss_framework_participant_cost(n, L)
        ours_rounds = framework_round_count(n)
        ss_rounds = ss_framework_round_count(n, L)
        bits = framework_participant_bits(n, L, 2 * 161)
        data[n] = (ours, ss, ours_rounds, ss_rounds, bits)
        rows.append(
            f"{n:>4} | {ours:14.3e} | {ss:16.3e} | "
            f"{ours_rounds:>11} | {ss_rounds:12.3e} | {bits/1e6:10.2f}"
        )
    rows.append("-" * len(header))
    return "\n".join(rows), data


def test_tab_vib(benchmark):
    table, data = build_table()
    print("\n" + table)
    write_result("tab_complexity", table)
    benchmark(lambda: framework_participant_cost(25, L, LAMBDA).total)

    ns = sorted(data)
    # Our computation: ~quadratic; SS: ~cubic (plus polylog).
    ours_order = growth_exponent(ns, [data[n][0] for n in ns])
    ss_order = growth_exponent(ns, [data[n][1] for n in ns])
    assert 1.7 < ours_order < 2.3, ours_order
    assert 2.7 < ss_order < 4.0, ss_order
    # Rounds: ours linear; SS explodes by orders of magnitude.
    assert all(data[n][3] / data[n][2] > 1e4 for n in ns)
    # Communication: ~quadratic in n.
    bits_order = growth_exponent(ns, [data[n][4] for n in ns])
    assert 1.7 < bits_order < 2.3, bits_order


def test_model_matches_measured_counts(benchmark):
    """The closed-form model must track real measured counts within a
    modest constant factor at the paper's operating point."""
    params = {k: v for k, v in PAPER_DEFAULTS.items() if k != "n"}
    run = counting_run(n=10, **params)
    measured = run.max_participant_ops.equivalent_multiplications
    modeled = framework_participant_cost(10, run.beta_bits, 1023).total
    benchmark(lambda: framework_participant_cost(10, run.beta_bits, 1023).total)
    assert 0.3 < measured / modeled < 3.0, (measured, modeled)
