"""TAB-VIB: regenerate the Section VI-B complexity comparison.

The paper's efficiency section compares, per participant:

* computation — ours ``O(l²n + ln²λ)`` group multiplications vs the
  comparison-based SS sort's ``O(l·t·n²(log n)²)`` (→ ``O(l·n³(log n)²)``
  at ``t = n/2``) integer multiplications;
* rounds — ours ``O(n)`` vs Jónsson's ``O((279l+5)·n(log n)²)``;
* communication — ours ``O(l·S_c·n²)`` bits.

This bench prints the concrete numbers at the paper's operating point
and checks the claimed asymptotic relationships numerically.
"""

import pytest

from benchmarks.harness import PAPER_DEFAULTS, counting_run, growth_exponent, write_result
from repro.analysis.complexity import (
    aggregation_candidates,
    framework_participant_bits,
    framework_participant_cost,
    framework_round_count,
    sharded_aggregation_bits,
    sharded_participant_bits,
    sharded_participant_cost,
    ss_framework_participant_bits,
    ss_framework_participant_cost,
    ss_framework_round_count,
)
from repro.analysis.symbolic import CrossoverModel
from repro.core.gain import beta_bit_length

L = beta_bit_length(PAPER_DEFAULTS["m"], PAPER_DEFAULTS["d1"],
                    PAPER_DEFAULTS["d2"], PAPER_DEFAULTS["h"])
LAMBDA = 160  # ECC-160 exponent size, the paper's headline instantiation


def build_table():
    rows = []
    header = (
        f"{'n':>4} | {'ours mults':>14} | {'SS mults':>16} | "
        f"{'ours rounds':>11} | {'SS rounds':>12} | {'ours Mbit':>10}"
    )
    rows.append("TAB-VIB: Section VI-B complexity comparison "
                f"(l={L}, λ={LAMBDA}, S_c=2·161 bits)")
    rows.append("-" * len(header))
    rows.append(header)
    rows.append("-" * len(header))
    ns = [10, 25, 50, 100]
    data = {}
    for n in ns:
        ours = framework_participant_cost(n, L, LAMBDA).total
        ss = ss_framework_participant_cost(n, L)
        ours_rounds = framework_round_count(n)
        ss_rounds = ss_framework_round_count(n, L)
        bits = framework_participant_bits(n, L, 2 * 161)
        data[n] = (ours, ss, ours_rounds, ss_rounds, bits)
        rows.append(
            f"{n:>4} | {ours:14.3e} | {ss:16.3e} | "
            f"{ours_rounds:>11} | {ss_rounds:12.3e} | {bits/1e6:10.2f}"
        )
    rows.append("-" * len(header))
    return "\n".join(rows), data


def test_tab_vib(benchmark):
    table, data = build_table()
    print("\n" + table)
    write_result("tab_complexity", table)
    benchmark(lambda: framework_participant_cost(25, L, LAMBDA).total)

    ns = sorted(data)
    # Our computation: ~quadratic; SS: ~cubic (plus polylog).
    ours_order = growth_exponent(ns, [data[n][0] for n in ns])
    ss_order = growth_exponent(ns, [data[n][1] for n in ns])
    assert 1.7 < ours_order < 2.3, ours_order
    assert 2.7 < ss_order < 4.0, ss_order
    # Rounds: ours linear; SS explodes by orders of magnitude.
    assert all(data[n][3] / data[n][2] > 1e4 for n in ns)
    # Communication: ~quadratic in n.
    bits_order = growth_exponent(ns, [data[n][4] for n in ns])
    assert 1.7 < bits_order < 2.3, bits_order


def build_sharded_table(shard_size=16, k=2):
    ciphertext = 2 * 161
    rows = []
    header = (
        f"{'n':>4} | {'flat mults':>14} | {'sharded mults':>14} | "
        f"{'speedup':>8} | {'flat Mbit':>10} | {'shard Mbit':>10} | "
        f"{'agg Mbit':>9}"
    )
    rows.append("TAB-VIB (sharded): hierarchical totals vs flat "
                f"(s={shard_size}, k={k}, l={L}, λ={LAMBDA}, S_c=2·161 bits)")
    rows.append("-" * len(header))
    rows.append(header)
    rows.append("-" * len(header))
    ns = [32, 64, 128, 256]
    data = {}
    for n in ns:
        flat = n * framework_participant_cost(n, L, LAMBDA).total
        sharded = n * sharded_participant_cost(n, shard_size, L, LAMBDA).total
        flat_bits = n * framework_participant_bits(n, L, ciphertext)
        shard_bits = n * sharded_participant_bits(n, shard_size, L, ciphertext)
        agg_bits = sharded_aggregation_bits(n, shard_size, k, L)
        data[n] = (flat, sharded, flat_bits, shard_bits + agg_bits)
        rows.append(
            f"{n:>4} | {flat:14.3e} | {sharded:14.3e} | "
            f"{flat / sharded:8.2f} | {flat_bits / 1e6:10.2f} | "
            f"{shard_bits / 1e6:10.2f} | {agg_bits / 1e6:9.4f}"
        )
    rows.append("-" * len(header))
    return "\n".join(rows), data


def test_tab_vib_sharded(benchmark):
    """Cross-validate the sharded closed forms: sub-quadratic totals,
    symbolic-model agreement, and a crossover below the bench point."""
    table, data = build_sharded_table()
    print("\n" + table)
    write_result("tab_complexity_sharded", table)
    benchmark(lambda: sharded_participant_cost(64, 16, L, LAMBDA).total)

    ns = sorted(data)
    # Flat totals are ~cubic (n participants × quadratic each); sharded
    # totals are ~linear — the per-participant cost is frozen at the
    # shard size, so only the shard count grows with n.
    flat_order = growth_exponent(ns, [data[n][0] for n in ns])
    sharded_order = growth_exponent(ns, [data[n][1] for n in ns])
    assert 2.7 < flat_order < 3.3, flat_order
    assert 0.9 < sharded_order < 1.3, sharded_order
    # Communication splits into a linear shard level and a ~quadratic
    # aggregation term (~c² in the candidate count).  At the paper's
    # small ciphertexts the aggregation matters by n=256, so the total
    # sits strictly between linear and quadratic — still well below the
    # flat protocol's ~cubic total.
    shard_bits_order = growth_exponent(
        ns, [n * sharded_participant_bits(n, 16, L, 2 * 161) for n in ns]
    )
    assert 0.9 < shard_bits_order < 1.3, shard_bits_order
    bits_order = growth_exponent(ns, [data[n][3] for n in ns])
    assert 1.0 < bits_order < 2.0, bits_order
    flat_bits_order = growth_exponent(ns, [data[n][2] for n in ns])
    assert bits_order < flat_bits_order, (bits_order, flat_bits_order)

    # The symbolic model reproduces the same closed forms exactly when
    # the shard size divides n, and places the crossover below n=64.
    model = CrossoverModel(16, L, LAMBDA, 2, ciphertext_bits=2 * 161)
    for n in ns:
        assert model.evaluate("multiplications", n, sharded=True) == pytest.approx(
            data[n][1], rel=1e-9
        )
        assert model.evaluate("bits", n, sharded=True) == pytest.approx(
            data[n][3], rel=1e-9
        )
    for metric in ("multiplications", "bits"):
        crossover = model.crossover(metric)
        assert crossover is not None and crossover <= 64, (metric, crossover)

    # Candidate accounting matches the balanced partition.
    assert aggregation_candidates(64, 16, 2) == 8


def test_model_matches_measured_counts(benchmark):
    """The closed-form model must track real measured counts within a
    modest constant factor at the paper's operating point."""
    params = {k: v for k, v in PAPER_DEFAULTS.items() if k != "n"}
    run = counting_run(n=10, **params)
    measured = run.max_participant_ops.equivalent_multiplications
    modeled = framework_participant_cost(10, run.beta_bits, 1023).total
    benchmark(lambda: framework_participant_cost(10, run.beta_bits, 1023).total)
    assert 0.3 < measured / modeled < 3.0, (measured, modeled)
