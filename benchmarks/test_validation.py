"""Validation of the benching methodology itself.

Two claims DESIGN.md §5 makes must hold for the figure benches to mean
anything:

1. **Counting runs are exact** — the inert :class:`CountingGroup`
   executes the identical protocol path, so its operation counters must
   match a fully-real group run to the operation.
2. **Quadratic extrapolation is exact (to data noise)** — per-participant
   counts are degree-2 polynomials in n, so a three-point fit predicts a
   held-out fourth point to within the input-data jitter.
"""

import pytest

from benchmarks.harness import counting_run, extrapolate_counts
from repro.analysis.counting import CountingGroup
from repro.core.framework import FrameworkConfig, GroupRankingFramework
from repro.core.gain import AttributeSchema, InitiatorInput, ParticipantInput
from repro.groups.dl import DLGroup
from repro.math.rng import SeededRNG

PARAMS = dict(m=6, t=2, d1=8, d2=8, h=8)


def run_with_group(group, n):
    schema = AttributeSchema(
        names=tuple(f"q{i}" for i in range(PARAMS["m"])),
        num_equal=PARAMS["t"], value_bits=PARAMS["d1"], weight_bits=PARAMS["d2"],
    )
    rng = SeededRNG(1)
    bound = 1 << PARAMS["d1"]
    initiator = InitiatorInput.create(
        schema,
        [rng.randrange(bound) for _ in range(PARAMS["m"])],
        [rng.randrange(1 << PARAMS["d2"]) for _ in range(PARAMS["m"])],
    )
    participants = [
        ParticipantInput.create(
            schema, [rng.randrange(bound) for _ in range(PARAMS["m"])]
        )
        for _ in range(n)
    ]
    config = FrameworkConfig(
        group=group, schema=schema, num_participants=n, k=max(1, n // 8),
        rho_bits=PARAMS["h"],
    )
    framework = GroupRankingFramework(config, initiator, participants, rng=SeededRNG(2))
    result = framework.run()
    return max(
        (metrics.ops for metrics in result.participant_metrics()),
        key=lambda ops: ops.equivalent_multiplications,
    )


def test_counting_group_matches_real_group_exactly(benchmark):
    real_ops = run_with_group(DLGroup.random(20, rng=SeededRNG(5)), 6)
    counted_ops = run_with_group(CountingGroup(element_bits=1024), 6)
    assert counted_ops.exponentiations == real_ops.exponentiations
    assert counted_ops.multiplications == real_ops.multiplications
    assert counted_ops.inversions == real_ops.inversions
    benchmark(lambda: run_with_group(CountingGroup(element_bits=1024), 6))


def test_distributed_ss_round_cost_supports_fig3b_model(benchmark):
    """The Fig. 3(b) SS bracket models assume ≥ ROUNDS_PER_COMPARISON
    network rounds per comparison.  Run the *real* engine-based SS
    ranking protocol at toy scale and confirm its measured rounds per
    pairwise comparison are far above that — i.e. both brackets are
    charitable to the SS baseline, so its measured disadvantage is not
    an artifact of our modelling."""
    from benchmarks.test_fig3b_network import ROUNDS_PER_COMPARISON
    from repro.math.primes import random_prime
    from repro.math.rng import SeededRNG
    from repro.sharing.protocol import run_distributed_ss_ranking

    prime = random_prime(12, SeededRNG(44))
    n = 4
    run = run_distributed_ss_ranking([9, 3, 7, 1], prime, rng=SeededRNG(45))
    pairs = n * (n - 1) // 2
    rounds_per_comparison = run.rounds / pairs
    print(f"\ndistributed SS: {run.rounds} rounds for {pairs} comparisons "
          f"(~{rounds_per_comparison:.0f} rounds each, field of "
          f"{prime.bit_length()} bits)")
    benchmark(lambda: run_distributed_ss_ranking([2, 1, 3], prime, rng=SeededRNG(46)))
    assert rounds_per_comparison > ROUNDS_PER_COMPARISON


def test_quadratic_extrapolation_predicts_held_out_point(benchmark):
    samples = {
        n: counting_run(n=n, **PARAMS).max_participant_ops.exponentiations
        for n in (6, 10, 14)
    }
    held_out = counting_run(n=18, **PARAMS).max_participant_ops.exponentiations
    predicted = extrapolate_counts(samples, 18)
    benchmark(lambda: extrapolate_counts(samples, 18))
    # Exact up to data-dependent jitter (participants' β bit patterns
    # vary per run), which is far below 1%.
    assert abs(predicted - held_out) / held_out < 0.01, (predicted, held_out)
