"""FIG-3b: networked execution time vs n over the 80-node topology.

Paper setting: random 80-node graph with 320 duplex 2 Mbps / 50 ms
links, TCP transport, ECC-160 vs DL-1024 vs the SS framework.

Our reproduction (DESIGN.md §5, substitution 2):

* DL/ECC — the *real* protocol transcript (counting run with the target
  family's wire sizes, measured through the wire transport so sizes are
  encoded bytes and frame counts reflect per-round coalescing) replayed
  through the store-and-forward simulator with per-round barriers.
* SS — the comparisons of the Batcher network serialized (the paper's
  own round accounting charges at least one round per multiplication;
  we batch each comparison's multiplications into
  ``ROUNDS_PER_COMPARISON`` parallel rounds, which is charitable to SS),
  with the full Nishide-Ohta traffic (``(279l+5)·n(n-1)`` field
  elements per comparison) spread over those rounds.

Shape checks kept to the claims that are robust to the under-specified
NS2 configuration (see EXPERIMENTS.md): the ECC framework is fastest at
every n, and every framework's time grows superlinearly.  The paper's
SS-vs-DL crossover at n≈30-40 is *model-dependent*: our store-and-forward
simulator charges the DL chain's sequential n³ bits more than NS2/TCP
evidently did; the measured series and the discussion live in
EXPERIMENTS.md.
"""

import pytest

from benchmarks.harness import (
    PAPER_DEFAULTS,
    counting_run_for_family,
    format_series_table,
    full_sweeps,
    write_result,
)
from repro.math.rng import SeededRNG
from repro.netsim.simulator import LinkConfig
from repro.netsim.topology import paper_topology
from repro.netsim.transport import replay_transcript
from repro.runtime.transcript import Transcript
from repro.sharing.comparison import nishide_ohta_cost
from repro.sorting.networks import batcher_odd_even

ROUNDS_PER_COMPARISON = 15   # constant-round comparison, mults batched


def sweep_ns():
    return [10, 20, 30, 40, 50, 60, 70] if full_sweeps() else [6, 10, 14, 18]


def ss_single_comparison_transcript(n: int, beta_bits: int) -> Transcript:
    """One comparison's traffic: ROUNDS_PER_COMPARISON rounds of n(n-1)
    pair messages carrying the batched multiplication payloads."""
    field_bits = beta_bits + 9
    mults_per_comparison = nishide_ohta_cost(beta_bits) + 2
    bits_per_pair_round = (
        mults_per_comparison // ROUNDS_PER_COMPARISON + 1
    ) * field_bits
    transcript = Transcript()
    party_ids = list(range(1, n + 1))
    for round_index in range(ROUNDS_PER_COMPARISON):
        for src in party_ids:
            for dst in party_ids:
                if src != dst:
                    transcript.record(
                        round_index, src, dst, "ss-mult", bits_per_pair_round
                    )
    return transcript


def ss_interaction_transcript(n: int) -> Transcript:
    """One comparison under the interaction-bound model: the same
    ROUNDS_PER_COMPARISON rounds, but each pair message carries only the
    handful of field elements on the critical path (the rest of the
    multiplication batch is assumed pipelined off the critical path).
    This is the model most favourable to the SS framework."""
    transcript = Transcript()
    party_ids = list(range(1, n + 1))
    for round_index in range(ROUNDS_PER_COMPARISON):
        for src in party_ids:
            for dst in party_ids:
                if src != dst:
                    transcript.record(round_index, src, dst, "ss-round", 3 * 80)
    return transcript


def ss_network_seconds(n: int, beta_bits: int, topology, link, model: str) -> float:
    """Comparisons run back to back; with per-round barriers every
    comparison costs the same, so simulate one and scale — exact under
    the synchronous-round model.

    ``model="batched"`` charges the full Nishide-Ohta multiplication
    traffic; ``model="interaction"`` charges only round latencies.  The
    two bracket any real deployment (see EXPERIMENTS.md).
    """
    if model == "batched":
        single_transcript = ss_single_comparison_transcript(n, beta_bits)
    elif model == "interaction":
        single_transcript = ss_interaction_transcript(n)
    else:
        raise ValueError("model must be 'batched' or 'interaction'")
    single = replay_transcript(single_transcript, topology, link).total_time_s
    return batcher_odd_even(n).comparator_count * single


@pytest.fixture(scope="module")
def series():
    params = {k: v for k, v in PAPER_DEFAULTS.items() if k != "n"}
    ns = sweep_ns()
    link = LinkConfig(bandwidth_bps=2_000_000.0, latency_s=0.050)
    dl, ecc, ss_hi, ss_lo, ss_lo_tcp = [], [], [], [], []
    for n in ns:
        topology = paper_topology(SeededRNG(17))
        topology.place_parties(list(range(n + 1)), SeededRNG(18))
        # Measured wire: the replay sees real encoded bytes (envelopes,
        # varint framing) and real frame counts (coalesced batches fold
        # into one wire message per channel per round).
        run_dl = counting_run_for_family(
            "DL", 80, n=n, wire="measured", **params
        )
        dl.append(replay_transcript(run_dl.transcript, topology, link).total_time_s)
        run_ecc = counting_run_for_family(
            "ECC", 80, n=n, wire="measured", **params
        )
        ecc.append(replay_transcript(run_ecc.transcript, topology, link).total_time_s)
        ss_hi.append(ss_network_seconds(n, run_dl.beta_bits, topology, link, "batched"))
        ss_lo.append(ss_network_seconds(n, run_dl.beta_bits, topology, link, "interaction"))
        # TCP framing (≈640 bits/message) barely moves the big-message
        # frameworks but visibly taxes the SS baseline's message counts.
        tcp = link.with_tcp_overhead()
        ss_lo_tcp.append(
            ss_network_seconds(n, run_dl.beta_bits, topology, tcp, "interaction")
        )
    return ns, {
        "SS-batched": ss_hi,
        "SS-interact": ss_lo,
        "SS-int+tcp": ss_lo_tcp,
        "DL-1024": dl,
        "ECC-160": ecc,
    }


def test_fig3b_series(series, benchmark):
    ns, columns = series
    from repro.analysis.ascii_chart import render_chart

    table = format_series_table(
        "FIG-3b: networked execution time (s) vs n  [80 nodes, 320 edges, "
        "2 Mbps, 50 ms]",
        "n", ns, columns,
    )
    chart = render_chart("FIG-3b (log y): time vs n", ns, columns)
    print("\n" + table + "\n\n" + chart)
    write_result("fig3b_network", table + "\n\n" + chart)

    # Timed kernel: replay the smallest ECC transcript once.
    params = {k: v for k, v in PAPER_DEFAULTS.items() if k != "n"}
    topology = paper_topology(SeededRNG(17))
    topology.place_parties(list(range(ns[0] + 1)), SeededRNG(18))
    run = counting_run_for_family(
        "ECC", 80, n=ns[0], wire="measured", **params
    )
    benchmark(lambda: replay_transcript(run.transcript, topology))

    # Robust shape claims:
    # 1. ECC fastest at every n (smaller ciphertexts, same structure).
    for dl_time, ecc_time in zip(columns["DL-1024"], columns["ECC-160"]):
        assert ecc_time < dl_time
    # 2. Times grow superlinearly for the transcript-replayed frameworks.
    for family in ("DL-1024", "ECC-160", "SS-batched"):
        first, last = columns[family][0], columns[family][-1]
        assert last / first > (ns[-1] / ns[0]) * 1.2, family
    # 3. DL pays a constant ciphertext-size factor over ECC (≈ 2048/336),
    #    visible as a ratio comfortably above 2 at every point.
    for dl_time, ecc_time in zip(columns["DL-1024"], columns["ECC-160"]):
        assert dl_time / ecc_time > 2
    # 4. The two SS models bracket: interaction-bound below, full-traffic
    #    above; the paper's measured SS curve lies between them (it beats
    #    DL at small n — as SS-interact does — and loses at large n — as
    #    SS-batched does).
    for hi, lo in zip(columns["SS-batched"], columns["SS-interact"]):
        assert lo < hi
    for n, lo, dl_time in zip(ns, columns["SS-interact"], columns["DL-1024"]):
        if n >= 10:  # the paper's smallest plotted point
            assert lo < dl_time, (n, lo, dl_time)
    # 5. TCP framing taxes the message-heavy SS baseline.
    for lo, lo_tcp in zip(columns["SS-interact"], columns["SS-int+tcp"]):
        assert lo_tcp > lo
