"""Micro-benchmarks of the cryptographic primitives.

Useful on their own (where does the time actually go?) and as the raw
material the cost model calibrates from.
"""

import pytest

from repro.crypto.bitenc import BitwiseElGamal
from repro.crypto.elgamal import ExponentialElGamal
from repro.crypto.zkp import MultiVerifierSchnorrProof
from repro.core.comparison import HomomorphicComparator
from repro.dotproduct.ioannidis import DotProductProtocol
from repro.groups.curves import get_curve
from repro.groups.dl import DLGroup
from repro.math.primes import random_prime
from repro.math.rng import SeededRNG
from repro.sharing.arithmetic import SSContext
from repro.sharing.comparison import less_than
from repro.sorting.networks import batcher_odd_even


@pytest.fixture(scope="module")
def dl1024():
    return DLGroup.standard(1024)


@pytest.fixture(scope="module")
def p160():
    return get_curve("secp160r1")


class TestGroupOps:
    def test_dl1024_exponentiation(self, benchmark, dl1024):
        rng = SeededRNG(1)
        base = dl1024.random_element(rng)
        exponent = dl1024.random_exponent(rng)
        benchmark(lambda: dl1024.exp(base, exponent))

    def test_secp160r1_scalar_mult(self, benchmark, p160):
        rng = SeededRNG(2)
        base = p160.random_element(rng)
        scalar = p160.random_exponent(rng)
        benchmark(lambda: p160.exp(base, scalar))

    def test_dl1024_multiplication(self, benchmark, dl1024):
        rng = SeededRNG(3)
        a, b = dl1024.random_element(rng), dl1024.random_element(rng)
        benchmark(lambda: dl1024.mul(a, b))

    def test_secp160r1_point_add(self, benchmark, p160):
        rng = SeededRNG(4)
        a, b = p160.random_element(rng), p160.random_element(rng)
        benchmark(lambda: p160.mul(a, b))


class TestSchemes:
    def test_exponential_elgamal_encrypt_p160(self, benchmark, p160):
        rng = SeededRNG(5)
        scheme = ExponentialElGamal(p160)
        keypair = scheme.generate_keypair(rng)
        benchmark(lambda: scheme.encrypt(1, keypair.public, rng))

    def test_bitwise_encrypt_66_bits_p160(self, benchmark, p160):
        rng = SeededRNG(6)
        scheme = BitwiseElGamal(p160)
        keypair = scheme.scheme.generate_keypair(rng)
        benchmark(lambda: scheme.encrypt(0x2FFFFFFFFFFFFFFF, 66, keypair.public, rng))

    def test_homomorphic_comparison_66_bits_p160(self, benchmark, p160):
        rng = SeededRNG(7)
        bitenc = BitwiseElGamal(p160)
        keypair = bitenc.scheme.generate_keypair(rng)
        other = bitenc.encrypt(0x1234567890ABCDEF, 66, keypair.public, rng)
        comparator = HomomorphicComparator(p160)
        benchmark(lambda: comparator.encrypted_taus(0x0FEDCBA098765432, other))

    def test_schnorr_multi_verifier_proof(self, benchmark, p160):
        rng = SeededRNG(8)
        zkp = MultiVerifierSchnorrProof(p160)
        secret = p160.random_exponent(rng)
        verifier_rngs = [SeededRNG(i) for i in range(10)]
        benchmark(lambda: zkp.prove_multi(secret, rng, verifier_rngs))


class TestSubstrates:
    def test_dot_product_m10(self, benchmark):
        field = random_prime(96, SeededRNG(9))
        protocol = DotProductProtocol(field)
        rng = SeededRNG(10)
        w = [rng.randrange(1 << 15) for _ in range(14)]
        v = [rng.randrange(1 << 15) for _ in range(14)]
        benchmark(lambda: protocol.run_locally(w, v, 7, rng))

    def test_ss_multiplication_n25(self, benchmark):
        prime = random_prime(76, SeededRNG(11))
        context = SSContext(parties=25, prime=prime, rng=SeededRNG(12))
        a, b = context.share(123), context.share(456)
        benchmark(lambda: context.multiply(a, b))

    def test_ss_comparison_n5(self, benchmark):
        prime = random_prime(24, SeededRNG(13))
        context = SSContext(parties=5, prime=prime, rng=SeededRNG(14))
        a, b = context.share(100), context.share(200)
        benchmark(lambda: less_than(context, a, b))

    def test_batcher_network_generation_n128(self, benchmark):
        benchmark(lambda: batcher_odd_even(128))
