"""Shared machinery for the figure-reproduction benches.

Pipeline (DESIGN.md §5, substitution 1):

1. **Counting run** — execute the real framework protocol end-to-end
   over a :class:`repro.analysis.counting.CountingGroup` that mimics the
   target family's wire sizes.  This yields the exact per-participant
   operation counts and the exact message transcript for the given
   ``(n, m, d1, d2, h)``.  Counting runs match fully-real runs
   operation-for-operation (asserted in ``test_validation.py``).
2. **Calibration** — measure seconds-per-exponentiation /
   seconds-per-multiplication on this machine at the true group sizes
   (1024/2048/3072-bit DL, 160/224/256-bit curves) and
   seconds-per-field-multiplication for the SS baseline.
3. **Estimate** — participant time = counted ops × calibrated costs.
   The SS baseline uses the paper's own operation accounting
   (Section VI-B: Batcher comparisons × (279l+5) multiplications ×
   O(n·t·log n) per-party work per multiplication).

Results are cached per process and appended to
``benchmarks/results/*.txt`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.complexity import ss_framework_participant_cost
from repro.analysis.costmodel import CostModel, calibrate_dl, calibrate_ecc, calibrate_field
from repro.analysis.counting import CountingGroup
from repro.core.framework import FrameworkConfig, FrameworkResult, GroupRankingFramework
from repro.core.gain import AttributeSchema, InitiatorInput, ParticipantInput
from repro.groups.base import OperationCounter
from repro.math.rng import SeededRNG
from repro.runtime.transcript import Transcript

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper defaults (Section VII): n=25, m=10, d1=15, h=15.  d2 is not
#: stated; we use d2=15 to match the symmetric sweep ranges.
PAPER_DEFAULTS = dict(n=25, m=10, t=4, d1=15, d2=15, h=15)

#: Fig. 3(a) tiers: symmetric level -> (DL modulus bits, curve bits).
TIERS = {80: (1024, 160), 112: (2048, 224), 128: (3072, 256)}


def full_sweeps() -> bool:
    """Opt into the paper's largest parameter points (slower)."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@dataclass
class CountedRun:
    """Everything a counting run produces."""

    n: int
    beta_bits: int
    max_participant_ops: OperationCounter
    initiator_ops: OperationCounter
    transcript: Transcript
    rounds: int


_COUNT_CACHE: Dict[Tuple, CountedRun] = {}


def counting_run(
    n: int,
    m: int = 10,
    t: int = 4,
    d1: int = 15,
    d2: int = 15,
    h: int = 15,
    element_bits: int = 1024,
    order_bits: Optional[int] = None,
    wire: str = "declared",
    coalesce: bool = True,
) -> CountedRun:
    """Execute the real protocol on an inert group; return exact counts.

    ``wire="measured"`` routes every message through the wire transport
    so the transcript carries *measured* encoded bytes (envelopes,
    framing, per-round coalescing per ``coalesce``) instead of the
    analytic declared sizes — the counting group reports the target
    family's element width, so encoded sizes match the real family's.
    """
    key = (n, m, t, d1, d2, h, element_bits, order_bits, wire, coalesce)
    if key in _COUNT_CACHE:
        return _COUNT_CACHE[key]
    schema = AttributeSchema(
        names=tuple(f"q{i}" for i in range(m)),
        num_equal=t,
        value_bits=d1,
        weight_bits=d2,
    )
    rng = SeededRNG(1)
    bound = 1 << d1
    initiator = InitiatorInput.create(
        schema,
        [rng.randrange(bound) for _ in range(m)],
        [rng.randrange(1 << d2) for _ in range(m)],
    )
    participants = [
        ParticipantInput.create(schema, [rng.randrange(bound) for _ in range(m)])
        for _ in range(n)
    ]
    group = CountingGroup(element_bits=element_bits, order_bits=order_bits)
    config = FrameworkConfig(
        group=group, schema=schema, num_participants=n,
        k=max(1, n // 8), rho_bits=h,
        wire=wire, coalesce=coalesce,
    )
    framework = GroupRankingFramework(config, initiator, participants, rng=SeededRNG(2))
    result = framework.run()
    participant_ops = max(
        (metrics.ops for metrics in result.participant_metrics()),
        key=lambda ops: ops.equivalent_multiplications,
    )
    run = CountedRun(
        n=n,
        beta_bits=config.beta_bits,
        max_participant_ops=participant_ops,
        initiator_ops=result.metrics[0].ops,
        transcript=result.transcript,
        rounds=result.rounds,
    )
    _COUNT_CACHE[key] = run
    return run


def counting_run_for_family(family: str, level: int = 80, **params) -> CountedRun:
    """Counting run with the wire sizes of the given family/tier."""
    dl_bits, curve_bits = TIERS[level]
    if family.upper() == "DL":
        return counting_run(element_bits=dl_bits, order_bits=dl_bits - 1, **params)
    if family.upper() == "ECC":
        return counting_run(element_bits=curve_bits + 1, order_bits=curve_bits, **params)
    raise ValueError("family must be DL or ECC")


# ---------------------------------------------------------------------------
# Time estimation
# ---------------------------------------------------------------------------

def framework_participant_seconds(run: CountedRun, family: str, level: int = 80) -> float:
    """Counted participant workload at calibrated per-op costs."""
    dl_bits, curve_bits = TIERS[level]
    if family.upper() == "DL":
        model = calibrate_dl(dl_bits)
    else:
        model = calibrate_ecc({160: "secp160r1", 224: "secp224r1", 256: "secp256r1"}[curve_bits])
    return model.seconds_for(run.max_participant_ops)


def ss_participant_seconds(n: int, beta_bits: int) -> float:
    """SS baseline time under the paper's Section VI-B accounting."""
    field_bits = beta_bits + 9  # statistical headroom over the β range
    unit = calibrate_field(field_bits)
    field_mults = ss_framework_participant_cost(n, beta_bits)
    return field_mults * unit.seconds_per_multiplication


# ---------------------------------------------------------------------------
# Quadratic extrapolation for the n=70 point (Fig. 3a)
# ---------------------------------------------------------------------------

def extrapolate_counts(samples: Dict[int, float], target_n: int) -> float:
    """Exact-polynomial extrapolation of per-participant counts in n.

    Every per-participant count in the framework is a degree-2
    polynomial in n for fixed (m, l): the shuffle chain contributes
    (n-1)² terms, everything else ≤ linear.  Fitting the quadratic
    through three measured points therefore *reconstructs* the count
    exactly (validated in test_validation.py), making large-n points
    affordable.
    """
    if len(samples) != 3:
        raise ValueError("need exactly three sample points")
    (x1, y1), (x2, y2), (x3, y3) = sorted(samples.items())
    # Lagrange interpolation at target_n.
    def basis(xa, xb, xc):
        return ((target_n - xb) * (target_n - xc)) / ((xa - xb) * (xa - xc))

    return y1 * basis(x1, x2, x3) + y2 * basis(x2, x1, x3) + y3 * basis(x3, x1, x2)


def extrapolated_ops(target_n: int, sample_ns=(6, 10, 14), **params) -> OperationCounter:
    """Per-participant OperationCounter at ``target_n`` via exact fitting."""
    runs = {n: counting_run(n=n, **params) for n in sample_ns}
    counter = OperationCounter()
    counter.exponentiations = round(
        extrapolate_counts(
            {n: run.max_participant_ops.exponentiations for n, run in runs.items()},
            target_n,
        )
    )
    counter.multiplications = round(
        extrapolate_counts(
            {n: run.max_participant_ops.multiplications for n, run in runs.items()},
            target_n,
        )
    )
    counter.inversions = round(
        extrapolate_counts(
            {n: run.max_participant_ops.inversions for n, run in runs.items()},
            target_n,
        )
    )
    any_run = next(iter(runs.values()))
    per_exp_bits = (
        any_run.max_participant_ops.exponent_bits
        // max(1, any_run.max_participant_ops.exponentiations)
    )
    counter.exponent_bits = counter.exponentiations * per_exp_bits
    return counter


# ---------------------------------------------------------------------------
# Output helpers
# ---------------------------------------------------------------------------

def format_series_table(
    title: str, x_label: str, xs: List, columns: Dict[str, List[float]]
) -> str:
    """Fixed-width table matching the figure's series."""
    header = f"{x_label:>8} | " + " | ".join(f"{name:>14}" for name in columns)
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for index, x in enumerate(xs):
        cells = " | ".join(f"{columns[name][index]:14.4f}" for name in columns)
        lines.append(f"{x:>8} | {cells}")
    lines.append(rule)
    return "\n".join(lines)


def write_result(name: str, content: str, suffix: str = "txt") -> Path:
    """Write one result artifact (``suffix="json"`` for machine-readable
    outputs like BENCH_parallel.json); returns the written path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.{suffix}"
    path.write_text(content + "\n")
    return path


def growth_exponent(xs: List[float], ys: List[float]) -> float:
    """Least-squares slope of log y against log x — the empirical order."""
    import math

    logs = [(math.log(x), math.log(y)) for x, y in zip(xs, ys) if y > 0]
    n = len(logs)
    mean_x = sum(lx for lx, _ in logs) / n
    mean_y = sum(ly for _, ly in logs) / n
    num = sum((lx - mean_x) * (ly - mean_y) for lx, ly in logs)
    den = sum((lx - mean_x) ** 2 for lx, _ in logs)
    return num / den
