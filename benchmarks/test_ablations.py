"""ABL-*: ablation benches for the design choices DESIGN.md §6 calls out.

Each ablation pairs a *cost* measurement with the *security consequence*
measured by the game harness:

* ABL-shuffle — dropping the within-set permutation saves nothing
  measurable but hands the zero-position attack a ≈1.0 advantage;
* ABL-rerandomize — dropping exponent rerandomization saves one
  exponentiation per ciphertext per hop (~1/3 of the chain cost) but
  hands the τ-dictionary attack a ≈1.0 advantage;
* ABL-suffix — the paper's naive O(l²) suffix sums vs our running-sum
  O(l): identical outputs, measurable step-7 savings;
* ABL-network — Batcher vs bitonic vs brick sorting networks for the SS
  baseline: comparator counts and depths.
"""

import pytest

from benchmarks.harness import format_series_table, write_result
from repro.analysis.games import (
    estimate_advantage,
    tau_dictionary_attack,
    zero_position_attack,
)
from repro.core.framework import FrameworkConfig, GroupRankingFramework
from repro.core.gain import AttributeSchema, InitiatorInput, ParticipantInput
from repro.groups.params import make_test_group
from repro.math.rng import SeededRNG
from repro.sorting.networks import (
    batcher_odd_even,
    bitonic,
    odd_even_transposition,
    pairwise,
)

SCHEMA = AttributeSchema(names=("a", "b", "c"), num_equal=1, value_bits=5, weight_bits=3)
INITIATOR = InitiatorInput.create(SCHEMA, [10, 0, 0], [2, 3, 1])
ADVERSARIES = {
    2: ParticipantInput.create(SCHEMA, [9, 5, 0]),
    3: ParticipantInput.create(SCHEMA, [12, 30, 31]),
}
CAND = (
    ParticipantInput.create(SCHEMA, [10, 4, 2]),
    ParticipantInput.create(SCHEMA, [10, 31, 19]),
)


def run_once(seed, **config_kwargs):
    group = make_test_group(48, seed=7)
    inputs = [CAND[0], ADVERSARIES[2], ADVERSARIES[3]]
    config = FrameworkConfig(
        group=group, schema=SCHEMA, num_participants=3, k=1, rho_bits=6,
        **config_kwargs,
    )
    framework = GroupRankingFramework(config, INITIATOR, inputs, rng=SeededRNG(seed))
    return framework.run()


def attack_advantage(attack, trials=14, **config_kwargs):
    from repro.analysis.games import FrameworkGame

    game = FrameworkGame(
        schema=SCHEMA, initiator_input=INITIATOR, adversary_inputs=ADVERSARIES,
        honest_ids=[1], candidates=CAND, **config_kwargs,
    )
    counter = [0]

    def trial(b, rng):
        counter[0] += 1
        framework, _ = game.run(b, seed=counter[0])
        return attack(game, framework, adversary_id=2, honest_id=1, rng=rng)

    return estimate_advantage(trial, trials, SeededRNG(4242))


def test_abl_shuffle_permutation(benchmark):
    with_cost = run_once(1, permute=True).max_participant_multiplications()
    without_cost = run_once(1, permute=False).max_participant_multiplications()
    broken = attack_advantage(zero_position_attack, permute=False)
    intact = attack_advantage(zero_position_attack, permute=True)
    table = format_series_table(
        "ABL-shuffle: permutation on/off",
        "on", [1, 0],
        {
            "participant mults": [with_cost, without_cost],
            "attack advantage": [intact, broken],
        },
    )
    print("\n" + table)
    write_result("abl_shuffle", table)
    benchmark(lambda: run_once(2, permute=True))
    # Permutation is computationally free ...
    assert abs(with_cost - without_cost) / with_cost < 0.01
    # ... and removing it loses the gain-hiding game outright.
    assert broken > 0.9
    assert abs(intact) < 0.6


def test_abl_rerandomization(benchmark):
    with_cost = run_once(3, rerandomize=True).max_participant_multiplications()
    without_cost = run_once(3, rerandomize=False).max_participant_multiplications()
    broken = attack_advantage(tau_dictionary_attack, rerandomize=False)
    intact = attack_advantage(tau_dictionary_attack, rerandomize=True)
    table = format_series_table(
        "ABL-rerandomize: exponent rerandomization on/off",
        "on", [1, 0],
        {
            "participant mults": [with_cost, without_cost],
            "attack advantage": [intact, broken],
        },
    )
    print("\n" + table)
    write_result("abl_rerandomize", table)
    benchmark(lambda: run_once(4, rerandomize=False))
    # Rerandomization costs real exponentiations in the chain ...
    assert without_cost < with_cost
    # ... but dropping it loses the game outright.
    assert broken > 0.9
    assert abs(intact) < 0.6


def test_abl_suffix_sums(benchmark):
    fast = run_once(5, naive_suffix=False).max_participant_multiplications()
    slow = run_once(5, naive_suffix=True).max_participant_multiplications()
    table = format_series_table(
        "ABL-suffix: running suffix sums vs the paper's O(l²) accounting",
        "naive", [0, 1],
        {"participant mults": [fast, slow]},
    )
    print("\n" + table)
    write_result("abl_suffix", table)
    benchmark(lambda: run_once(6, naive_suffix=False))
    assert slow > fast


def test_abl_rho_masking_width(benchmark):
    """ABL-rho: the deniability the mask width h buys (DESIGN.md §6).

    For a fixed true gain, census how many candidate gains remain
    consistent with the observed β as h grows — the quantitative form of
    Lemma 1's 'she cannot get them from a single β value'."""
    from repro.analysis.leakage import deniability_series

    hs = [4, 6, 8, 10, 12, 14]
    series = deniability_series(true_gain=2000, hs=hs, window_radius=500, seed=11)
    counts = [float(experiment.consistent_count) for experiment in series]
    table = format_series_table(
        "ABL-rho: consistent-gain census vs mask width h (true gain 2000, ±500)",
        "h", hs, {"consistent gains": counts},
    )
    print("\n" + table)
    write_result("abl_rho", table)
    benchmark(lambda: deniability_series(2000, [8], 500, seed=12))
    # Monotone growth, and comfortably many alternatives at the paper's h=15 scale.
    assert counts == sorted(counts)
    assert counts[-1] > 5 * counts[0]


def test_abl_fixed_base_exponentiation(benchmark):
    """ABL-fixedbase: precomputed-table generator exponentiation vs the
    generic ladder, measured on the real 1024-bit DL group and secp160r1."""
    import time

    from repro.groups.curves import get_curve
    from repro.groups.dl import DLGroup
    from repro.groups.fixed_base import PrecomputedBase

    rows = {"plain us": [], "fixed-base us": [], "speedup": []}
    labels = []
    for group in (DLGroup.standard(1024), get_curve("secp160r1")):
        labels.append(group.name)
        table = PrecomputedBase(group, group.generator(), window_bits=4)
        exponent = group.random_exponent(SeededRNG(31))

        def best_of(fn, reps=12):
            best = float("inf")
            for _ in range(5):
                start = time.perf_counter()
                for _ in range(reps):
                    fn()
                best = min(best, (time.perf_counter() - start) / reps)
            return best

        plain = best_of(lambda: group.exp_generator(exponent))
        fixed = best_of(lambda: table.exp(exponent))
        rows["plain us"].append(plain * 1e6)
        rows["fixed-base us"].append(fixed * 1e6)
        rows["speedup"].append(plain / fixed)
    table_text = format_series_table(
        "ABL-fixedbase: generator exponentiation, plain vs precomputed",
        "idx", list(range(len(labels))), rows,
    )
    table_text += "\n  idx -> " + ", ".join(
        f"{i}: {label}" for i, label in enumerate(labels)
    )
    print("\n" + table_text)
    write_result("abl_fixedbase", table_text)
    dl_group = DLGroup.standard(1024)
    dl_table = PrecomputedBase(dl_group, dl_group.generator())
    exponent = dl_group.random_exponent(SeededRNG(32))
    benchmark(lambda: dl_table.exp(exponent))
    # The table wins clearly on the DL group (modular multiplication is
    # cheap relative to a full ladder).  On the curve it roughly breaks
    # even: our Group.mul is an *affine* point addition costing a field
    # inversion, which eats the saved doublings — a mixed-coordinate
    # table would be needed to win there.  Assert both findings so a
    # regression in either direction is caught.
    assert rows["speedup"][0] > 1.5, rows["speedup"]     # DL-1024: real win
    assert rows["speedup"][1] > 0.6, rows["speedup"]     # secp160r1: no cliff


def test_abl_sorting_networks(benchmark):
    ns = [8, 16, 32, 64]
    rows = {
        "batcher gates": [float(batcher_odd_even(n).comparator_count) for n in ns],
        "bitonic gates": [float(bitonic(n).comparator_count) for n in ns],
        "pairwise gates": [float(pairwise(n).comparator_count) for n in ns],
        "brick gates": [float(odd_even_transposition(n).comparator_count) for n in ns],
        "batcher depth": [float(batcher_odd_even(n).depth) for n in ns],
        "brick depth": [float(odd_even_transposition(n).depth) for n in ns],
    }
    table = format_series_table(
        "ABL-network: sorting-network choices for the SS baseline",
        "n", ns, rows,
    )
    print("\n" + table)
    write_result("abl_networks", table)
    benchmark(lambda: batcher_odd_even(64))
    for i in range(len(ns)):
        # Batcher no worse than bitonic, both far below brick at scale.
        assert rows["batcher gates"][i] <= rows["bitonic gates"][i]
        assert rows["batcher depth"][i] <= rows["brick depth"][i]
    assert rows["brick gates"][-1] > 3 * rows["batcher gates"][-1]
