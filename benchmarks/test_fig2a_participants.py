"""FIG-2a: participant computation time vs number of participants n.

Paper setting: m=10, d1=15, h=15; frameworks SS / DL(1024) / ECC(160).
Expected shape: SS grows ≈ cubically, ours ≈ quadratically; the ECC
framework is cheapest, the SS framework most expensive at the paper's
n=25 operating point.
"""

import pytest

from benchmarks.harness import (
    PAPER_DEFAULTS,
    counting_run,
    format_series_table,
    framework_participant_seconds,
    full_sweeps,
    growth_exponent,
    ss_participant_seconds,
    write_result,
)


def sweep_ns():
    return [10, 15, 20, 25, 30, 35, 40, 45] if full_sweeps() else [10, 15, 20, 25]


@pytest.fixture(scope="module")
def series():
    params = {k: v for k, v in PAPER_DEFAULTS.items() if k != "n"}
    ns = sweep_ns()
    dl, ecc, ss = [], [], []
    for n in ns:
        run = counting_run(n=n, **params)
        dl.append(framework_participant_seconds(run, "DL", 80))
        ecc.append(framework_participant_seconds(run, "ECC", 80))
        ss.append(ss_participant_seconds(n, run.beta_bits))
    return ns, {"SS": ss, "DL-1024": dl, "ECC-160": ecc}


def test_fig2a_series(series, benchmark):
    ns, columns = series
    from repro.analysis.ascii_chart import render_chart

    table = format_series_table(
        "FIG-2a: participant computation time (s) vs n  [m=10, d1=15, h=15]",
        "n", ns, columns,
    )
    chart = render_chart("FIG-2a (log y): time vs n", ns, columns)
    print("\n" + table + "\n\n" + chart)
    write_result("fig2a_participants", table + "\n\n" + chart)
    # Timed kernel: one counted point end-to-end (run + estimate).
    benchmark(lambda: framework_participant_seconds(
        counting_run(n=10, **{k: v for k, v in PAPER_DEFAULTS.items() if k != "n"}),
        "ECC", 80,
    ))

    # Shape assertions (the paper's Fig. 2(a) claims):
    # 1. our frameworks grow ~quadratically in n ...
    for family in ("DL-1024", "ECC-160"):
        order = growth_exponent(ns, columns[family])
        assert 1.6 < order < 2.4, (family, order)
    # 2. ... the SS framework ~cubically (with (log n)³ drift upward).
    ss_order = growth_exponent(ns, columns["SS"])
    assert 2.6 < ss_order < 4.2, ss_order
    # 3. ordering at the paper's operating point n=25 (index of 25).
    i25 = ns.index(25)
    assert columns["ECC-160"][i25] < columns["DL-1024"][i25] < columns["SS"][i25]
    # 4. the SS-overtakes-DL crossover falls inside the sweep, at or
    #    before the paper's n=25 operating point (discrete version of
    #    repro.analysis.tradeoff.find_crossover on the measured series).
    crossover_n = next(
        (n for n, ss, dl in zip(ns, columns["SS"], columns["DL-1024"]) if ss >= dl),
        None,
    )
    print(f"\nSS-overtakes-DL crossover: n = {crossover_n}")
    assert crossover_n is not None and crossover_n <= 25
