"""Wall-clock benchmark of the arithmetic backend seam.

Times the primitive that dominates every protocol phase — full-width
modular exponentiation — at the paper's real group sizes (DL-1024 and
DL-2048) under the pure-python reference and, when installed, the gmpy2
backend, plus the end-to-end ``DLGroup.exp`` path (seam dispatch +
metering included) at 2048 bits.

Acceptance bar (only enforced where gmpy2 exists — CI's nightly backend
job): ≥ 5× on 2048-bit exponentiation.  The python-only portion always
runs, so the bench also acts as a smoke test of the seam's dispatch
overhead: ``DLGroup.exp`` must stay within 25 % of a raw ``pow`` call.

Emits machine-readable ``results/BENCH_backend.json`` with ``null``
gmpy2 fields when the library is absent.  With ``REPRO_BENCH_ENFORCE=1``
the measured gmpy2 speedup is compared against the committed number and
fails on a > 20 % regression (skipped while the committed artifact
predates any gmpy2-capable runner).  Marked ``perf``: not part of
tier-1.
"""

from __future__ import annotations

import importlib.util
import json
import os
import time

import pytest

from benchmarks.harness import RESULTS_DIR, write_result
from repro.groups.dl import DLGroup
from repro.math import backend
from repro.math.backend import Gmpy2Backend, PythonBackend
from repro.math.rng import SeededRNG

pytestmark = pytest.mark.perf

HAVE_GMPY2 = importlib.util.find_spec("gmpy2") is not None
SIZES = (1024, 2048)
REPS = {1024: 40, 2048: 12}
MIN_SPEEDUP_2048 = 5.0
MAX_DISPATCH_OVERHEAD = 0.25
REGRESSION_TOLERANCE = 0.20


def _workload(group, reps):
    rng = SeededRNG(7)
    p, q = group.modulus, group.order
    bases = [rng.randint(2, p - 1) for _ in range(reps)]
    exponents = [rng.randint(1, q - 1) for _ in range(reps)]
    return p, list(zip(bases, exponents))


def _time_powmod(impl, p, pairs):
    impl.powmod(*pairs[0], p)  # warm
    checksum = 0
    t0 = time.perf_counter()
    for base, exponent in pairs:
        checksum ^= impl.powmod(base, exponent, p)
    return (time.perf_counter() - t0) / len(pairs), checksum


def _time_group_exp(group, pairs):
    group.exp(*pairs[0])  # warm
    t0 = time.perf_counter()
    for base, exponent in pairs:
        group.exp(base, exponent)
    return (time.perf_counter() - t0) / len(pairs)


def test_backend_speedup():
    python = PythonBackend()
    native = Gmpy2Backend() if HAVE_GMPY2 else None

    sizes_payload = {}
    speedup_2048 = None
    for bits in SIZES:
        group = DLGroup.standard(bits)
        p, pairs = _workload(group, REPS[bits])
        python_s, python_sum = _time_powmod(python, p, pairs)
        entry = {
            "python_modexp_ms": round(python_s * 1e3, 3),
            "gmpy2_modexp_ms": None,
            "speedup": None,
        }
        if native is not None:
            native_s, native_sum = _time_powmod(native, p, pairs)
            # Equivalence before speed: same math or the number is void.
            assert native_sum == python_sum
            entry["gmpy2_modexp_ms"] = round(native_s * 1e3, 3)
            entry["speedup"] = round(python_s / native_s, 2)
            if bits == 2048:
                speedup_2048 = python_s / native_s
        sizes_payload[str(bits)] = entry

    # End-to-end seam path at 2048 bits: group.exp = meter + dispatch +
    # active-backend powmod.
    group = DLGroup.standard(2048)
    p, pairs = _workload(group, REPS[2048])
    with backend.use_backend("python"):
        group_exp_s = _time_group_exp(group, pairs)
    raw_s, _ = _time_powmod(python, p, pairs)
    dispatch_overhead = group_exp_s / raw_s - 1.0

    payload = {
        "bench": "arithmetic_backend",
        "gmpy2_available": HAVE_GMPY2,
        "sizes": sizes_payload,
        "group_exp_2048_ms": round(group_exp_s * 1e3, 3),
        "dispatch_overhead": round(dispatch_overhead, 4),
        "speedup_2048": round(speedup_2048, 2) if speedup_2048 else None,
    }

    committed_path = RESULTS_DIR / "BENCH_backend.json"
    committed_speedup = None
    if committed_path.exists():
        committed_speedup = json.loads(committed_path.read_text()).get(
            "speedup_2048"
        )
    write_result("BENCH_backend", json.dumps(payload, indent=2), suffix="json")

    assert dispatch_overhead <= MAX_DISPATCH_OVERHEAD, payload
    if HAVE_GMPY2:
        assert speedup_2048 >= MIN_SPEEDUP_2048, payload

    # Nightly gate: only meaningful once a gmpy2-capable runner has
    # committed a baseline number AND this runner has gmpy2 too.
    if (
        os.environ.get("REPRO_BENCH_ENFORCE", "") == "1"
        and committed_speedup
        and speedup_2048
    ):
        floor = committed_speedup * (1.0 - REGRESSION_TOLERANCE)
        assert speedup_2048 >= floor, (
            f"speedup regressed: {speedup_2048:.2f}x vs committed "
            f"{committed_speedup:.2f}x (floor {floor:.2f}x)"
        )
