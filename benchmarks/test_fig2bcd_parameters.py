"""FIG-2b/2c/2d: participant computation time vs m, d1 and h.

Paper setting: n=25 fixed, one parameter swept at a time.
Expected shapes: logarithmic growth in m (only ``⌈log m⌉`` enters the
β bit-length), linear growth in d1 and in h (both enter it linearly).
"""

import pytest

from benchmarks.harness import (
    PAPER_DEFAULTS,
    counting_run,
    format_series_table,
    framework_participant_seconds,
    full_sweeps,
    growth_exponent,
    ss_participant_seconds,
    write_result,
)

FIXED_N = 25 if full_sweeps() else 15


def sweep(param, values):
    params = dict(PAPER_DEFAULTS)
    params["n"] = FIXED_N
    del params["n"]
    dl, ecc, ss = [], [], []
    for value in values:
        point = dict(params)
        point[param] = value
        run = counting_run(n=FIXED_N, **point)
        dl.append(framework_participant_seconds(run, "DL", 80))
        ecc.append(framework_participant_seconds(run, "ECC", 80))
        ss.append(ss_participant_seconds(FIXED_N, run.beta_bits))
    return {"SS": ss, "DL-1024": dl, "ECC-160": ecc}


def check_and_emit(name, title, x_label, xs, columns):
    table = format_series_table(title, x_label, xs, columns)
    print("\n" + table)
    write_result(name, table)
    return table


def test_fig2b_dimensions(benchmark):
    ms = [5, 10, 20, 40] if not full_sweeps() else [5, 10, 15, 20, 25, 30, 35, 40]
    params = {k: v for k, v in PAPER_DEFAULTS.items() if k not in ("n", "m")}
    columns = {"SS": [], "DL-1024": [], "ECC-160": []}
    # The m-sweep moves l by only ⌈log m⌉ (3 bits end to end), so the SS
    # per-field-multiplication cost is constant across the sweep; measure
    # it once at the widest point instead of re-calibrating per point
    # (whose measurement jitter would swamp a 3-bit effect).
    from repro.analysis.complexity import ss_framework_participant_cost
    from repro.analysis.costmodel import calibrate_field

    widest = counting_run(n=FIXED_N, m=ms[-1], **params).beta_bits
    ss_unit = calibrate_field(widest + 9).seconds_per_multiplication
    for m in ms:
        run = counting_run(n=FIXED_N, m=m, **params)
        columns["DL-1024"].append(framework_participant_seconds(run, "DL", 80))
        columns["ECC-160"].append(framework_participant_seconds(run, "ECC", 80))
        columns["SS"].append(
            ss_framework_participant_cost(FIXED_N, run.beta_bits) * ss_unit
        )
    check_and_emit(
        "fig2b_dimensions",
        f"FIG-2b: participant computation time (s) vs m  [n={FIXED_N}, d1=15, h=15]",
        "m", ms, columns,
    )
    benchmark(lambda: counting_run(n=FIXED_N, m=ms[0], **params))
    # Logarithmic in m: time grows, but far slower than linearly —
    # m increased 8x, time should grow well under 2x.
    for family, series in columns.items():
        assert series[-1] > series[0], family
        assert series[-1] / series[0] < 8 ** 0.5, (family, series)


def test_fig2c_attribute_bits(benchmark):
    d1s = [5, 15, 25, 35] if not full_sweeps() else [5, 10, 15, 20, 25, 30, 35]
    params = {k: v for k, v in PAPER_DEFAULTS.items() if k not in ("n", "d1")}
    columns = {"SS": [], "DL-1024": [], "ECC-160": []}
    for d1 in d1s:
        run = counting_run(n=FIXED_N, d1=d1, **params)
        columns["DL-1024"].append(framework_participant_seconds(run, "DL", 80))
        columns["ECC-160"].append(framework_participant_seconds(run, "ECC", 80))
        columns["SS"].append(ss_participant_seconds(FIXED_N, run.beta_bits))
    check_and_emit(
        "fig2c_attribute_bits",
        f"FIG-2c: participant computation time (s) vs d1  [n={FIXED_N}, m=10, h=15]",
        "d1", d1s, columns,
    )
    benchmark(lambda: counting_run(n=FIXED_N, d1=d1s[0], **params))
    # Linear in d1 for the DL/ECC frameworks (counts are exact; unit
    # costs fixed): increments must be positive and roughly even.  The
    # SS series multiplies exact counts by a *measured* per-field-mult
    # cost whose limb-boundary steps make evenness too strict — require
    # monotone growth only.
    for family in ("DL-1024", "ECC-160"):
        increments = [b - a for a, b in zip(columns[family], columns[family][1:])]
        assert all(increment > 0 for increment in increments), family
        assert max(increments) < 2.5 * min(increments), (family, increments)
    assert columns["SS"][-1] > columns["SS"][0]


def test_fig2d_rho_bits(benchmark):
    hs = [5, 15, 25, 35] if not full_sweeps() else [5, 10, 15, 20, 25, 30, 35]
    params = {k: v for k, v in PAPER_DEFAULTS.items() if k not in ("n", "h")}
    columns = {"SS": [], "DL-1024": [], "ECC-160": []}
    for h in hs:
        run = counting_run(n=FIXED_N, h=h, **params)
        columns["DL-1024"].append(framework_participant_seconds(run, "DL", 80))
        columns["ECC-160"].append(framework_participant_seconds(run, "ECC", 80))
        columns["SS"].append(ss_participant_seconds(FIXED_N, run.beta_bits))
    check_and_emit(
        "fig2d_rho_bits",
        f"FIG-2d: participant computation time (s) vs h  [n={FIXED_N}, m=10, d1=15]",
        "h", hs, columns,
    )
    benchmark(lambda: counting_run(n=FIXED_N, h=hs[0], **params))
    for family in ("DL-1024", "ECC-160"):
        increments = [b - a for a, b in zip(columns[family], columns[family][1:])]
        assert all(increment > 0 for increment in increments), family
        assert max(increments) < 2.5 * min(increments), (family, increments)
    assert columns["SS"][-1] > columns["SS"][0]
