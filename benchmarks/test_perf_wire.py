"""Wire-path benchmark: bytes and wire messages per run at ``n = 16``.

Runs one full framework instance twice through the measured transport:

* **baseline** — wire format v1 (fixed 4-byte length framing, no
  interning) with per-datum transport: every ciphertext, every bit of a
  bitwise broadcast, travels as its own enveloped wire message;
* **optimized** — wire format v2 (varint framing + per-channel element
  interning) with per-round coalescing: all messages sharing a
  (sender, receiver, round) triple leave in one framed batch.

The acceptance bars are the PR's headline, sliced to phase 2 (keying +
comparison + chain — the hot path the coalescing targets): ≥ 2× fewer
bytes and ≥ 3× fewer wire messages.  An 8-byte test group keeps element
payloads small so framing and envelope overhead dominate, which is the
regime the optimization exists for (at DL-1024 the payload dominates and
both bars are easier).

Emits machine-readable ``results/BENCH_wire.json``.  With
``REPRO_BENCH_ENFORCE=1`` the run also compares against the *committed*
numbers and fails on a > 20 % regression in the phase-2 bytes-per-run
ratio — the nightly gate.  Marked ``perf``: not part of tier-1.
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks.harness import RESULTS_DIR, write_result
from repro.core.framework import FrameworkConfig, GroupRankingFramework
from repro.core.gain import AttributeSchema, InitiatorInput, ParticipantInput
from repro.core.parties import (
    PHASE_CHAIN,
    PHASE_COMPARISON,
    PHASE_KEYING,
    phase_of_tag,
)
from repro.groups.params import make_test_group
from repro.math.rng import SeededRNG

pytestmark = pytest.mark.perf

N = 16
ATTRIBUTES = 4
GROUP_BITS = 64
MIN_BYTE_RATIO = 2.0       # phase-2 bytes: v1-per-datum / v2-coalesced
MIN_MESSAGE_RATIO = 3.0    # phase-2 wire messages, same comparison
REGRESSION_TOLERANCE = 0.20

PHASE2 = (PHASE_KEYING, PHASE_COMPARISON, PHASE_CHAIN)


def _instance(seed: int = 7):
    rng = SeededRNG(seed)
    schema = AttributeSchema(
        names=tuple(f"attr{i}" for i in range(ATTRIBUTES)),
        num_equal=ATTRIBUTES // 2,
        value_bits=6,
        weight_bits=4,
    )
    initiator = InitiatorInput.create(
        schema,
        [rng.randrange(64) for _ in range(ATTRIBUTES)],
        [rng.randrange(16) for _ in range(ATTRIBUTES)],
    )
    participants = [
        ParticipantInput.create(
            schema, [rng.randrange(64) for _ in range(ATTRIBUTES)]
        )
        for _ in range(N)
    ]
    return schema, initiator, participants


def _run(schema, initiator, participants, *, codec: str, coalesce: bool):
    config = FrameworkConfig(
        group=make_test_group(GROUP_BITS),
        schema=schema,
        num_participants=N,
        k=3,
        rho_bits=8,
        wire="measured",
        wire_codec=codec,
        coalesce=coalesce,
    )
    framework = GroupRankingFramework(
        config, initiator, participants, rng=SeededRNG(7)
    )
    result = framework.run()
    assert framework.check_result(result) == []
    return result


def _phase2_slice(stats):
    bits = sum(
        value for tag, value in stats.bits_by_tag.items()
        if phase_of_tag(tag) in PHASE2
    )
    messages = sum(
        value for tag, value in stats.messages_by_tag.items()
        if phase_of_tag(tag) in PHASE2
    )
    return bits, messages


def test_wire_v2_coalesced_vs_v1_per_datum():
    schema, initiator, participants = _instance()

    baseline = _run(schema, initiator, participants,
                    codec="v1", coalesce=False)
    optimized = _run(schema, initiator, participants,
                     codec="v2", coalesce=True)
    assert baseline.ranks == optimized.ranks

    base_bits, base_messages = _phase2_slice(baseline.wire_stats)
    opt_bits, opt_messages = _phase2_slice(optimized.wire_stats)
    byte_ratio = base_bits / opt_bits
    message_ratio = base_messages / opt_messages

    payload = {
        "bench": "wire_path",
        "group": f"DL-{GROUP_BITS}",
        "n": N,
        "attributes": ATTRIBUTES,
        "phase2": {
            "baseline_v1_per_datum": {
                "bytes": base_bits // 8,
                "wire_messages": base_messages,
            },
            "optimized_v2_coalesced": {
                "bytes": opt_bits // 8,
                "wire_messages": opt_messages,
            },
            "byte_ratio": round(byte_ratio, 2),
            "message_ratio": round(message_ratio, 2),
        },
        "total": {
            "baseline_bytes": baseline.wire_stats.wire_bits // 8,
            "optimized_bytes": optimized.wire_stats.wire_bits // 8,
            "baseline_wire_messages": baseline.wire_stats.wire_messages,
            "optimized_wire_messages": optimized.wire_stats.wire_messages,
            "logical_messages": optimized.wire_stats.logical_messages,
        },
        "digest_v2": optimized.wire_stats.digest,
    }

    # Nightly regression gate: read the committed numbers BEFORE
    # overwriting them.
    committed_path = RESULTS_DIR / "BENCH_wire.json"
    committed_ratio = None
    if committed_path.exists():
        committed = json.loads(committed_path.read_text())
        committed_ratio = committed.get("phase2", {}).get("byte_ratio")
    write_result("BENCH_wire", json.dumps(payload, indent=2), suffix="json")

    assert byte_ratio >= MIN_BYTE_RATIO, payload
    assert message_ratio >= MIN_MESSAGE_RATIO, payload

    if os.environ.get("REPRO_BENCH_ENFORCE", "") == "1" and committed_ratio:
        floor = committed_ratio * (1.0 - REGRESSION_TOLERANCE)
        assert byte_ratio >= floor, (
            f"phase-2 byte ratio regressed: {byte_ratio:.2f}x vs committed "
            f"{committed_ratio:.2f}x (floor {floor:.2f}x)"
        )


def test_digest_stable_across_coalescing():
    """The batching must never change what is said — only how it is
    framed.  Same instance, coalescing on vs off: identical payload
    digests (and identical ranks, checked inside ``_run``)."""
    schema, initiator, participants = _instance(seed=11)
    on = _run(schema, initiator, participants, codec="v2", coalesce=True)
    off = _run(schema, initiator, participants, codec="v2", coalesce=False)
    assert on.wire_stats.digest == off.wire_stats.digest
    assert on.wire_stats.wire_messages < off.wire_stats.wire_messages
