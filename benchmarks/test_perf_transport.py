"""Wall-clock benchmark of the socket transport vs the serial engine.

The in-process engine executes parties one at a time inside a single
interpreter: its wall-clock is the *sum* of all parties' compute.  The
socket transport runs one OS process per party, so independent compute
(exponentiations for different destinations, ZKP verification of
different provers) overlaps across cores and with socket IO.  On a
multi-core box the distributed run must finish at least
``MIN_SPEEDUP``× faster; on a 1-2 core machine the transport *loses*
(context switches cost, parallelism pays nothing), so the assertion is
gated on ``os.cpu_count() >= MIN_CORES`` and the committed JSON records
whatever the measuring machine honestly saw.

Also validates the network simulator against reality: replaying the
distributed run's transcript over loopback-parameterised links must
predict a communication time *below* the measured wall-clock (the wall
clock includes all compute), while the paper's 2 Mbps / 50 ms WAN links
must predict communication alone far above the loopback prediction —
the simulator orders environments correctly.

Emits ``results/BENCH_transport.json``.  With ``REPRO_BENCH_ENFORCE=1``
the measured speedup is compared against the committed number when both
the committed artifact and the current runner are multi-core.  Marked
``perf``: not part of tier-1.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.harness import RESULTS_DIR, write_result
from repro.core.framework import FrameworkConfig, GroupRankingFramework
from repro.core.gain import AttributeSchema, InitiatorInput
from repro.groups.dl import DLGroup
from repro.math.rng import SeededRNG
from repro.netsim import LinkConfig, paper_topology, replay_transcript
from repro.runtime.transport.coordinator import run_distributed
from repro.runtime.transport.frames import TransportSettings
from tests.conftest import make_participants

pytestmark = pytest.mark.perf

N = 16
MIN_CORES = 4          # below this, one process per party cannot win
MIN_SPEEDUP = 2.0
REGRESSION_TOLERANCE = 0.25

#: Loopback link model for the simulator-vs-reality check: effectively
#: unconstrained bandwidth and a measured-order loopback one-way delay.
LOOPBACK_LINK = LinkConfig(bandwidth_bps=10_000_000_000.0, latency_s=20e-6)


def _build():
    schema = AttributeSchema(
        names=("age", "pressure", "friends", "income"),
        num_equal=2, value_bits=6, weight_bits=4,
    )
    initiator = InitiatorInput.create(
        schema, criterion=[35, 20, 0, 0], weights=[3, 5, 2, 7]
    )
    config = FrameworkConfig(
        group=DLGroup.random(48, rng=SeededRNG(101)),
        schema=schema, num_participants=N, k=2, rho_bits=6,
        wire="measured",
    )
    return GroupRankingFramework(
        config, initiator, make_participants(schema, N, seed=19),
        rng=SeededRNG(7),
    )


def test_transport_speedup():
    cores = os.cpu_count() or 1

    t0 = time.perf_counter()
    serial = _build().run()
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    distributed = run_distributed(
        _build(), settings=TransportSettings(timeout_s=300.0)
    )
    tcp_s = time.perf_counter() - t0

    # Speed without equivalence is meaningless: same ranks, same
    # per-channel payload bytes, same total payload.
    assert distributed.ranks == serial.ranks
    assert (distributed.wire_stats.canonical_digest
            == serial.wire_stats.canonical_digest)
    assert (distributed.wire_stats.payload_bits
            == serial.wire_stats.payload_bits)

    speedup = serial_s / tcp_s

    # Simulator-vs-reality: communication alone, as predicted over
    # loopback-class links, must sit below the measured wall-clock.
    topology = paper_topology(SeededRNG(7))
    topology.place_parties(list(range(N + 1)), SeededRNG(8))
    loopback = replay_transcript(
        distributed.transcript, topology, LOOPBACK_LINK
    )
    wan = replay_transcript(distributed.transcript, topology, LinkConfig())
    assert loopback.total_time_s < tcp_s, (
        f"simulator predicts {loopback.total_time_s:.2f}s of pure "
        f"communication, above the {tcp_s:.2f}s measured wall-clock"
    )
    assert wan.total_time_s > 10.0 * loopback.total_time_s, (
        "2 Mbps / 50 ms WAN links must dominate loopback predictions"
    )

    payload = {
        "bench": "socket_transport",
        "cpu_count": cores,
        "participants": N,
        "serial_inproc_s": round(serial_s, 3),
        "distributed_tcp_s": round(tcp_s, 3),
        "speedup": round(speedup, 3),
        "transcript_equivalent": True,
        "netsim": {
            "loopback_predicted_comm_s": round(loopback.total_time_s, 4),
            "wan_predicted_comm_s": round(wan.total_time_s, 3),
            "measured_wall_s": round(tcp_s, 3),
        },
    }

    committed_path = RESULTS_DIR / "BENCH_transport.json"
    committed = None
    if committed_path.exists():
        committed = json.loads(committed_path.read_text())
    write_result("BENCH_transport", json.dumps(payload, indent=2),
                 suffix="json")

    if cores >= MIN_CORES:
        assert speedup >= MIN_SPEEDUP, payload

    # Nightly gate: only meaningful when the committed baseline and the
    # current runner both had the cores to show a real speedup.
    if (
        os.environ.get("REPRO_BENCH_ENFORCE", "") == "1"
        and committed is not None
        and committed.get("cpu_count", 1) >= MIN_CORES
        and cores >= MIN_CORES
    ):
        floor = committed["speedup"] * (1.0 - REGRESSION_TOLERANCE)
        assert speedup >= floor, (
            f"transport speedup regressed: {speedup:.2f}x vs committed "
            f"{committed['speedup']:.2f}x (floor {floor:.2f}x)"
        )
