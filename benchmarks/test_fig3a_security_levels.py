"""FIG-3a: participant computation time vs security level, n = 70.

The paper compares the ECC and DL frameworks at the NIST-equivalent
tiers 80/112/128-bit (ECC 160/224/256 vs DL 1024/2048/3072) with n=70.
Expected shape: ECC is cheaper at every level and grows more slowly as
the level rises.

The n=70 operation counts come from exact quadratic extrapolation of
three counted runs (per-participant counts are degree-2 polynomials in
n; exactness is asserted in test_validation.py).
"""

import pytest

from benchmarks.harness import (
    PAPER_DEFAULTS,
    extrapolated_ops,
    format_series_table,
    full_sweeps,
    write_result,
)
from repro.analysis.costmodel import calibrate_dl, calibrate_ecc

LEVELS = [80, 112, 128]
CURVES = {80: "secp160r1", 112: "secp224r1", 128: "secp256r1"}
DL_BITS = {80: 1024, 112: 2048, 128: 3072}
TARGET_N = 70


@pytest.fixture(scope="module")
def ops_at_70():
    params = {k: v for k, v in PAPER_DEFAULTS.items() if k != "n"}
    sample_ns = (6, 10, 14) if not full_sweeps() else (10, 16, 22)
    return extrapolated_ops(TARGET_N, sample_ns=sample_ns, **params)


def test_fig3a_series(ops_at_70, benchmark):
    dl_times, ecc_times = [], []
    for level in LEVELS:
        dl_times.append(calibrate_dl(DL_BITS[level]).seconds_for(ops_at_70))
        ecc_times.append(calibrate_ecc(CURVES[level]).seconds_for(ops_at_70))
    table = format_series_table(
        f"FIG-3a: participant computation time (s) vs security level  [n={TARGET_N}]",
        "level", LEVELS, {"DL": dl_times, "ECC": ecc_times},
    )
    print("\n" + table)
    write_result("fig3a_security_levels", table)

    benchmark(lambda: calibrate_ecc(CURVES[80]).seconds_for(ops_at_70))

    # Paper claims: ECC cheaper at every equivalent level ...
    for dl, ecc in zip(dl_times, ecc_times):
        assert ecc < dl
    # ... and ECC grows more slowly as the level rises.
    assert ecc_times[-1] / ecc_times[0] < dl_times[-1] / dl_times[0]
    # Sanity: both grow with the security level.
    assert dl_times == sorted(dl_times)
    assert ecc_times == sorted(ecc_times)
