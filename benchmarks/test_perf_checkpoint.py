"""Wall-clock overhead of durable checkpointing on a full ranking run.

Times the end-to-end framework at n=16 over a real (128-bit) DL group —
large enough that group arithmetic dominates, small enough for a
nightly job — once bare and once with the checkpoint layer journaling
every message and snapshotting every phase boundary to disk.

Acceptance bar: checkpointing costs ≤ 5 % wall-clock.  Bare and
checkpointed runs alternate in pairs and the gate applies to the *best*
pair's overhead ratio: low-frequency machine noise (a busy neighbour
for a few seconds) can inflate any single pair, but a systematic
hot-path cost — say an accidental per-record fsync — inflates every
pair and cannot hide.  The checkpointed run must also produce identical
ranks (the cheap end-to-end sanity; the byte-level equivalence matrix
lives in tests/test_checkpoint.py).

Emits machine-readable ``results/BENCH_checkpoint.json``.  With
``REPRO_BENCH_ENFORCE=1`` the measured overhead is additionally gated
against the committed number plus an absolute margin, so a checkpoint
hot-path regression fails the nightly even while still under the 5 %
ceiling.  Marked ``perf``: not part of tier-1.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.harness import RESULTS_DIR, write_result
from repro.core.framework import FrameworkConfig, GroupRankingFramework
from repro.core.gain import AttributeSchema, InitiatorInput, ParticipantInput
from repro.groups.dl import DLGroup
from repro.math.rng import SeededRNG

pytestmark = pytest.mark.perf

N = 16
GROUP_BITS = 128
OVERHEAD_CEILING = 0.05
#: Enforce mode: fail when overhead exceeds committed + this (absolute).
REGRESSION_MARGIN = 0.03
REPS = 3


def _framework(group, checkpoint_dir=None):
    schema = AttributeSchema(
        names=("age", "pressure", "friends", "income"),
        num_equal=2, value_bits=6, weight_bits=4,
    )
    initiator = InitiatorInput.create(
        schema, criterion=[35, 20, 0, 0], weights=[3, 5, 2, 7]
    )
    rng = SeededRNG(19)
    bound = 1 << schema.value_bits
    participants = [
        ParticipantInput.create(
            schema, [rng.randrange(bound) for _ in range(schema.dimension)]
        )
        for _ in range(N)
    ]
    config = FrameworkConfig(
        group=group, schema=schema, num_participants=N, k=4, rho_bits=8,
        wire="measured", checkpoint_dir=checkpoint_dir,
    )
    return GroupRankingFramework(
        config, initiator, participants, rng=SeededRNG(5)
    )


def _timed_run(group, checkpoint_dir=None):
    framework = _framework(group, checkpoint_dir)
    start = time.perf_counter()
    result = framework.run()
    return time.perf_counter() - start, result


def _dir_stats(root: Path):
    files = [path for path in root.rglob("*") if path.is_file()]
    return {
        "files": len(files),
        "bytes": sum(path.stat().st_size for path in files),
        "snapshots": sum(1 for path in files if path.suffix == ".ckpt"),
    }


def test_checkpoint_overhead(tmp_path):
    group = DLGroup.random(GROUP_BITS, rng=SeededRNG(101))
    pairs = []
    for rep in range(REPS):
        bare_s, bare = _timed_run(group)
        directory = tmp_path / f"ckpt-{rep}"
        durable_s, durable = _timed_run(group, str(directory))
        assert durable.ranks == bare.ranks
        pairs.append((bare_s, durable_s))
    overheads = [durable_s / bare_s - 1.0 for bare_s, durable_s in pairs]
    overhead = min(overheads)
    best = overheads.index(overhead)

    payload = {
        "bench": "checkpoint_overhead",
        "n": N,
        "group_bits": GROUP_BITS,
        "bare_s": round(pairs[best][0], 3),
        "checkpointed_s": round(pairs[best][1], 3),
        "overhead": round(overhead, 4),
        "pair_overheads": [round(value, 4) for value in overheads],
        "ceiling": OVERHEAD_CEILING,
        "durable_state": _dir_stats(tmp_path / f"ckpt-{REPS - 1}"),
    }

    committed_path = RESULTS_DIR / "BENCH_checkpoint.json"
    committed_overhead = None
    if committed_path.exists():
        committed_overhead = json.loads(committed_path.read_text()).get(
            "overhead"
        )
    write_result(
        "BENCH_checkpoint", json.dumps(payload, indent=2), suffix="json"
    )

    assert overhead <= OVERHEAD_CEILING, payload

    if (
        os.environ.get("REPRO_BENCH_ENFORCE", "") == "1"
        and committed_overhead is not None
    ):
        # A committed overhead below zero is measurement noise, not a
        # real speedup; floor the baseline so the gate stays passable.
        ceiling = max(committed_overhead, 0.0) + REGRESSION_MARGIN
        assert overhead <= ceiling, (
            f"checkpoint overhead regressed: {overhead:.4f} vs committed "
            f"{committed_overhead:.4f} (ceiling {ceiling:.4f})"
        )
