"""Wall-clock benchmark of batched proof verification at a real group
size: the verification-dominated phase one party faces at ``n = 16``.

The workload is what a participant actually checks in a malicious-model
run at DL-1024:

* 15 peers' key-knowledge NIZKs (keying phase), and
* 15 peers' bitwise β encryptions with per-bit validity proofs
  (comparison phase): 15 × 24 = 360 disjunctive Chaum-Pedersen proofs.

``per_proof`` verifies each equation with its own exponentiations (the
native-pow path); ``batched`` folds each phase into one Straus
multi-exponentiation under hash-derived 64-bit coefficients, so the
native pows become shared-squaring-chain multiplications.  The
acceptance bar is the PR's headline: ≥ 3× on the combined phase.

Emits machine-readable ``results/BENCH_batchverify.json``.  With
``REPRO_BENCH_ENFORCE=1`` the run also compares against the *committed*
numbers and fails on a > 20 % speedup regression — the nightly gate.
Marked ``perf``: not part of tier-1.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.harness import RESULTS_DIR, write_result
from repro.core.comparison import verify_bit_proofs_or_abort
from repro.crypto.bitenc import BitwiseElGamal
from repro.crypto.elgamal import ExponentialElGamal
from repro.crypto.zkp import (
    NonInteractiveSchnorrProof,
    batch_verify_nizk_or_abort,
)
from repro.groups.dl import DLGroup
from repro.math.rng import SeededRNG

pytestmark = pytest.mark.perf

N_PEERS = 15          # one participant's view of n = 16
WIDTH = 24            # β bit length l
GROUP_BITS = 1024
MIN_SPEEDUP = 3.0
REGRESSION_TOLERANCE = 0.20


def _setup():
    group = DLGroup.standard(GROUP_BITS)
    rng = SeededRNG(43)
    keypair = ExponentialElGamal(group).generate_keypair(rng)
    nizk = NonInteractiveSchnorrProof(group)
    nizk_claims = []
    for peer in range(1, N_PEERS + 1):
        secret = group.random_exponent(rng)
        nizk_claims.append(
            (peer, group.exp_generator(secret), nizk.prove(secret, rng))
        )
    bitwise = BitwiseElGamal(group)
    bit_claims = []
    for peer in range(1, N_PEERS + 1):
        beta = rng.randrange(1 << WIDTH)
        ciphertext, proofs = bitwise.encrypt_with_proofs(
            beta, WIDTH, keypair.public, rng
        )
        bit_claims.append((peer, ciphertext, proofs))
    return group, keypair, nizk, nizk_claims, bit_claims


def _count_ops(group, fn):
    group.counter.reset()
    fn()
    snapshot = group.counter.snapshot()
    group.counter.reset()
    return snapshot


def test_batched_verification_speedup():
    group, keypair, nizk, nizk_claims, bit_claims = _setup()

    def verify_per_proof():
        for prover, public, proof in nizk_claims:
            nizk.verify_or_abort(public, proof, blamed=prover)
        verify_bit_proofs_or_abort(
            group, keypair.public, bit_claims, batch=False
        )

    def verify_batched():
        batch_verify_nizk_or_abort(nizk, nizk_claims)
        verify_bit_proofs_or_abort(
            group, keypair.public, bit_claims, batch=True
        )

    # Warm once (hash contexts, table allocations), then time.
    verify_per_proof()
    verify_batched()

    t0 = time.perf_counter()
    verify_per_proof()
    per_proof_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    verify_batched()
    batched_s = time.perf_counter() - t0

    per_proof_ops = _count_ops(group, verify_per_proof)
    batched_ops = _count_ops(group, verify_batched)

    speedup = per_proof_s / batched_s
    payload = {
        "bench": "batched_proof_verification",
        "group": f"DL-{GROUP_BITS}",
        "n": N_PEERS + 1,
        "beta_bits": WIDTH,
        "nizk_proofs": len(nizk_claims),
        "bit_proofs": N_PEERS * WIDTH,
        "seconds": {
            "per_proof": round(per_proof_s, 4),
            "batched": round(batched_s, 4),
        },
        "speedup": round(speedup, 2),
        "ops": {
            "per_proof": {
                "exponentiations": per_proof_ops.exponentiations,
                "multiplications": per_proof_ops.multiplications,
                "equivalent_multiplications":
                    per_proof_ops.equivalent_multiplications,
            },
            "batched": {
                "exponentiations": batched_ops.exponentiations,
                "multiplications": batched_ops.multiplications,
                "equivalent_multiplications":
                    batched_ops.equivalent_multiplications,
            },
        },
    }

    # Nightly regression gate: compare against the committed numbers
    # BEFORE overwriting them.
    committed_path = RESULTS_DIR / "BENCH_batchverify.json"
    committed_speedup = None
    if committed_path.exists():
        committed_speedup = json.loads(committed_path.read_text()).get("speedup")
    write_result("BENCH_batchverify", json.dumps(payload, indent=2),
                 suffix="json")

    assert speedup >= MIN_SPEEDUP, payload
    # Batching must also win in the paper's operation unit, not just on
    # this machine's clock.
    assert (
        batched_ops.equivalent_multiplications
        < per_proof_ops.equivalent_multiplications / 2
    ), payload

    if os.environ.get("REPRO_BENCH_ENFORCE", "") == "1" and committed_speedup:
        floor = committed_speedup * (1.0 - REGRESSION_TOLERANCE)
        assert speedup >= floor, (
            f"speedup regressed: {speedup:.2f}x vs committed "
            f"{committed_speedup:.2f}x (floor {floor:.2f}x)"
        )
