"""Benches for the extension systems built beyond the paper's core.

* ABL-zkpmode — interactive multi-verifier Schnorr vs Fiat-Shamir NIZK
  keying: identical security goal, measurably fewer rounds and messages.
* ABL-topology — the framework's communication time across network
  shapes (the paper's random graph vs star/ring/grid/complete).
* EXT-anonmsg — the anonymous-collection substrate: linear rounds,
  quadratic ciphertext traffic.
* EXT-twoparty — the DGK two-party comparison the multiparty protocol
  generalizes: linear cost in the bit width, one round trip.
"""

import pytest

from benchmarks.harness import format_series_table, write_result
from repro.anonmsg.collection import run_anonymous_collection
from repro.core.framework import FrameworkConfig, GroupRankingFramework
from repro.core.gain import AttributeSchema, InitiatorInput, ParticipantInput
from repro.groups.dl import DLGroup
from repro.groups.params import make_test_group
from repro.math.rng import SeededRNG
from repro.netsim.simulator import LinkConfig
from repro.netsim.topology import (
    complete_topology,
    grid_topology,
    paper_topology,
    ring_topology,
    star_topology,
)
from repro.netsim.transport import replay_transcript
from repro.twoparty.dgk import millionaires_problem


def run_framework(n=5, seed=3, **config_kwargs):
    schema = AttributeSchema(
        names=("a", "b", "c", "d"), num_equal=2, value_bits=6, weight_bits=4
    )
    initiator = InitiatorInput.create(schema, [10, 20, 0, 0], [1, 2, 3, 4])
    rng = SeededRNG(seed)
    inputs = [
        ParticipantInput.create(schema, [rng.randrange(64) for _ in range(4)])
        for _ in range(n)
    ]
    config = FrameworkConfig(
        group=make_test_group(48, seed=5), schema=schema,
        num_participants=n, k=2, rho_bits=6, **config_kwargs,
    )
    framework = GroupRankingFramework(config, initiator, inputs, rng=SeededRNG(seed))
    return framework, framework.run()


def test_abl_zkp_mode(benchmark):
    rows = {"rounds": [], "messages": [], "zkp bits": []}
    for mode in ("interactive", "fiat-shamir"):
        _, result = run_framework(zkp_mode=mode)
        zkp_bits = sum(
            entry.size_bits
            for entry in result.transcript
            if entry.tag.startswith("zkp") or entry.tag == "pk-share"
        )
        rows["rounds"].append(float(result.rounds))
        rows["messages"].append(float(len(result.transcript)))
        rows["zkp bits"].append(float(zkp_bits))
    table = format_series_table(
        "ABL-zkpmode: interactive Schnorr vs Fiat-Shamir keying (n=5)",
        "mode", ["inter", "nizk"], rows,
    )
    print("\n" + table)
    write_result("abl_zkpmode", table)
    benchmark(lambda: run_framework(zkp_mode="fiat-shamir"))
    # NIZK strictly reduces rounds and messages.
    assert rows["rounds"][1] < rows["rounds"][0]
    assert rows["messages"][1] < rows["messages"][0]


def test_abl_topology_sensitivity(benchmark):
    """Same protocol transcript, different networks: congestion topology
    matters, completeness is the lower bound."""
    n = 5
    _, result = run_framework(n=n)
    link = LinkConfig(bandwidth_bps=2_000_000, latency_s=0.050)
    topologies = {
        "paper-80": paper_topology(SeededRNG(1)),
        "complete": complete_topology(16),
        "grid-4x4": grid_topology(4, 4),
        "star-16": star_topology(16),
        "ring-16": ring_topology(16),
    }
    times = {}
    for name, topology in topologies.items():
        topology.place_parties(list(range(n + 1)), SeededRNG(2))
        times[name] = replay_transcript(result.transcript, topology, link).total_time_s
    table = format_series_table(
        "ABL-topology: framework communication time (s) by network shape (n=5)",
        "idx", [0], {name: [value] for name, value in sorted(times.items())},
    )
    print("\n" + table)
    write_result("abl_topology", table)
    benchmark(lambda: replay_transcript(result.transcript, topologies["complete"], link))
    assert times["complete"] <= min(times[name] for name in times if name != "complete")
    assert times["ring-16"] > times["complete"]


@pytest.fixture(scope="module")
def anon_group():
    return DLGroup.random(48, rng=SeededRNG(55))


def test_ext_anonymous_collection(benchmark, anon_group):
    ns = [3, 5, 7, 9]
    rounds, bits = [], []
    for n in ns:
        result = run_anonymous_collection(
            anon_group, list(range(1, n + 1)), rng=SeededRNG(5)
        )
        assert result.messages == list(range(1, n + 1))
        rounds.append(float(result.rounds))
        bits.append(float(result.transcript.total_bits))
    table = format_series_table(
        "EXT-anonmsg: anonymous collection cost vs members",
        "n", ns, {"rounds": rounds, "total bits": bits},
    )
    print("\n" + table)
    write_result("ext_anonmsg", table)
    benchmark(lambda: run_anonymous_collection(anon_group, [1, 2, 3],
                                               rng=SeededRNG(6)))
    # Rounds linear (chain), traffic ~quadratic (n ciphertexts × n hops).
    assert rounds[-1] - rounds[-2] == rounds[1] - rounds[0]
    assert bits[-1] / bits[0] > (ns[-1] / ns[0]) ** 1.5


def test_ext_unlinkable_sort(benchmark, anon_group):
    """EXT-sort: the standalone contribution-(3) protocol vs party count.

    Linear rounds, ~cubic total traffic (the chain moves n sets of
    w(n-1) ciphertexts across n hops) — and exactly competition ranks.
    """
    from repro.core.sorting_protocol import unlinkable_sort

    ns = [3, 5, 7, 9]
    rounds, megabits = [], []
    for n in ns:
        values = [(7 * i + 3) % 16 for i in range(n)]
        result = unlinkable_sort(anon_group, values, 4, rng=SeededRNG(21))
        assert result.ranks == result.expected_ranks(values)
        rounds.append(float(result.rounds))
        megabits.append(result.transcript.total_bits / 1e6)
    table = format_series_table(
        "EXT-sort: unlinkable multiparty sorting cost vs n (4-bit values)",
        "n", ns, {"rounds": rounds, "Mbit": megabits},
    )
    print("\n" + table)
    write_result("ext_unlinkable_sort", table)
    benchmark(lambda: unlinkable_sort(anon_group, [3, 1, 2], 4, rng=SeededRNG(22)))
    assert rounds[-1] - rounds[-2] == rounds[1] - rounds[0]  # linear rounds
    assert megabits[-1] / megabits[0] > (ns[-1] / ns[0]) ** 2  # superquadratic


def test_ext_head_to_head_frameworks(benchmark):
    """EXT-headtohead: the two complete systems on identical inputs.

    Same phase 1, different phase 2: the paper's unlinkable chain vs the
    SS ranking — rounds, messages and the leak, side by side.
    """
    from repro.baselines.ss_framework import SSGroupRankingFramework

    schema = AttributeSchema(
        names=("a", "b", "c", "d"), num_equal=2, value_bits=6, weight_bits=4
    )
    initiator = InitiatorInput.create(schema, [10, 20, 0, 0], [1, 2, 3, 4])
    rng = SeededRNG(61)
    inputs = [
        ParticipantInput.create(schema, [rng.randrange(64) for _ in range(4)])
        for _ in range(4)
    ]
    config = FrameworkConfig(
        group=make_test_group(48, seed=5), schema=schema,
        num_participants=4, k=2, rho_bits=6,
    )
    ours = GroupRankingFramework(config, initiator, inputs, rng=SeededRNG(62)).run()
    baseline = SSGroupRankingFramework(
        schema, initiator, inputs, k=2, rho_bits=6, rng=SeededRNG(63)
    ).run()
    rows = {
        "rounds": [float(ours.rounds), float(baseline.rounds)],
        "messages": [float(len(ours.transcript)), float(len(baseline.transcript))],
        "ranks public to all": [0.0, float(len(baseline.public_ranking))],
    }
    table = format_series_table(
        "EXT-headtohead: ours (row 0) vs SS baseline (row 1), n=4, same inputs",
        "sys", [0, 1], rows,
    )
    print("\n" + table)
    write_result("ext_head_to_head", table)
    benchmark(lambda: GroupRankingFramework(
        config, initiator, inputs, rng=SeededRNG(64)
    ).run())
    assert ours.ranks == baseline.ranks          # same functionality ...
    assert baseline.rounds > 20 * ours.rounds    # ... vastly more rounds ...
    assert rows["ranks public to all"][1] == 4   # ... and the leak.


def test_ext_two_party_comparison(benchmark, anon_group):
    widths = [8, 16, 32, 64]
    exps = []
    for width in widths:
        result, stats = millionaires_problem(
            anon_group, 3, (1 << width) - 5, width, SeededRNG(7)
        )
        assert result is True
        exps.append(float(stats["exponentiations"]))
    table = format_series_table(
        "EXT-twoparty: DGK comparison cost vs bit width",
        "bits", widths, {"exponentiations": exps},
    )
    print("\n" + table)
    write_result("ext_twoparty", table)
    benchmark(lambda: millionaires_problem(anon_group, 3, 12, 8, SeededRNG(8)))
    # Linear in the width.
    ratios = [b / a for a, b in zip(exps, exps[1:])]
    assert all(1.6 < ratio < 2.4 for ratio in ratios), ratios
