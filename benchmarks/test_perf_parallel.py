"""Wall-clock benchmark of the parallel comparison engine (this repo's
offline/online + multiexp + process-pool stack) against the plain serial
path, at a real group size.

Unlike the counting benches (which estimate time from metered operation
counts), this one *times* the step-6/7 workload one participant faces
for ``n = 16`` peers at 1024-bit DL: bitwise-encrypt β, then evaluate
the τ circuit against every peer's published bits.

Three configurations:

* ``baseline``     — textbook scheme, serial.
* ``accelerated``  — multiexp kernels + offline randomness pool,
  workers = 1 (the pool build runs before the clock starts — that is
  the whole point of an offline phase).
* ``parallel``     — the same plus a 4-worker process pool (pre-warmed,
  as a long-lived runtime would hold it).

Emits machine-readable ``results/BENCH_parallel.json`` and asserts the
headline ratios: parallel ≥ 1.8× over baseline, accelerated serial
≥ 1.3× over baseline.  Marked ``perf``: not part of tier-1.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.harness import write_result
from repro.core.comparison import HomomorphicComparator
from repro.crypto.bitenc import BitwiseElGamal
from repro.crypto.elgamal import ExponentialElGamal
from repro.crypto.precompute import RandomnessPool
from repro.groups.dl import DLGroup
from repro.math.rng import SeededRNG
from repro.runtime.parallel import TauJob, WorkerPool, evaluate_tau_job

pytestmark = pytest.mark.perf

N_PEERS = 15          # one participant's view of n = 16
WIDTH = 24            # β bit length l
GROUP_BITS = 1024
WORKERS = 4


def _setup():
    group = DLGroup.standard(GROUP_BITS)
    rng = SeededRNG(41)
    keypair = ExponentialElGamal(group).generate_keypair(rng)
    betas = [rng.randrange(1 << WIDTH) for _ in range(N_PEERS)]
    my_beta = rng.randrange(1 << WIDTH)
    bitwise = BitwiseElGamal(group)
    peer_bits = [
        bitwise.encrypt(beta, WIDTH, keypair.public, rng) for beta in betas
    ]
    return group, keypair, my_beta, peer_bits


def _comparison_phase_serial(group, keypair, my_beta, peer_bits, rng,
                             multiexp=False, pool=None):
    """One participant's step 6 + step 7 workload."""
    bitwise = BitwiseElGamal(group, pool=pool, multiexp=multiexp)
    bitwise.encrypt(my_beta, WIDTH, keypair.public, rng)
    comparator = HomomorphicComparator(group, multiexp=multiexp, pool=pool)
    my_set = []
    for bits in peer_bits:
        my_set.extend(comparator.encrypted_taus(my_beta, bits))
    return my_set


def _comparison_phase_parallel(group, keypair, my_beta, peer_bits, rng,
                               pool, worker_pool):
    bitwise = BitwiseElGamal(group, pool=pool, multiexp=True)
    bitwise.encrypt(my_beta, WIDTH, keypair.public, rng)
    jobs = [
        TauJob(group=group, beta=my_beta, other_bits=tuple(bits.bits),
               multiexp=True)
        for bits in peer_bits
    ]
    my_set = []
    for taus, _ in worker_pool.map(evaluate_tau_job, jobs):
        my_set.extend(taus)
    return my_set


def _count_ops(group, fn):
    group.counter.reset()
    fn()
    snapshot = group.counter.snapshot()
    group.counter.reset()
    return snapshot


def test_parallel_comparison_speedup():
    group, keypair, my_beta, peer_bits = _setup()

    # -- timed runs ---------------------------------------------------------
    t0 = time.perf_counter()
    reference = _comparison_phase_serial(
        group, keypair, my_beta, peer_bits, SeededRNG(7)
    )
    baseline_s = time.perf_counter() - t0

    # Offline phase (excluded from the online clock): enough pairs for the
    # bit encryption, plus warm fixed-base tables for the circuit shifts.
    pool = RandomnessPool(group, keypair.public, SeededRNG(8), size=WIDTH)
    t0 = time.perf_counter()
    accelerated = _comparison_phase_serial(
        group, keypair, my_beta, peer_bits, SeededRNG(7),
        multiexp=True, pool=pool,
    )
    accelerated_s = time.perf_counter() - t0

    pool2 = RandomnessPool(group, keypair.public, SeededRNG(8), size=WIDTH)
    with WorkerPool(WORKERS) as workers:
        # Pre-warm: fork the worker processes before the clock starts.
        workers.map(evaluate_tau_job, [
            TauJob(group=group, beta=1,
                   other_bits=tuple(peer_bits[0].bits[:2]), multiexp=True)
            for _ in range(WORKERS)
        ])
        t0 = time.perf_counter()
        parallel = _comparison_phase_parallel(
            group, keypair, my_beta, peer_bits, SeededRNG(7), pool2, workers
        )
        parallel_s = time.perf_counter() - t0
        fanout_live = workers.parallel

    # The kernels must not change a single element.
    assert accelerated == reference
    assert parallel == reference

    # -- op-count contrast (multiexp vs plain, one pairwise circuit) --------
    comparator_plain = HomomorphicComparator(group)
    comparator_fast = HomomorphicComparator(group, multiexp=True)
    plain_ops = _count_ops(
        group, lambda: comparator_plain.encrypted_taus(my_beta, peer_bits[0])
    )
    fast_ops = _count_ops(
        group, lambda: comparator_fast.encrypted_taus(my_beta, peer_bits[0])
    )

    speedup_parallel = baseline_s / parallel_s
    speedup_serial = baseline_s / accelerated_s
    payload = {
        "bench": "parallel_comparison_engine",
        "group": f"DL-{GROUP_BITS}",
        "n": N_PEERS + 1,
        "beta_bits": WIDTH,
        "workers": WORKERS,
        "cores": os.cpu_count(),
        "fanout_live": fanout_live,
        "seconds": {
            "baseline_serial": round(baseline_s, 4),
            "multiexp_pool_serial": round(accelerated_s, 4),
            "multiexp_pool_parallel": round(parallel_s, 4),
        },
        "speedup": {
            "parallel_vs_baseline": round(speedup_parallel, 2),
            "serial_accel_vs_baseline": round(speedup_serial, 2),
        },
        "ops_per_pairwise_circuit": {
            "plain": {
                "multiplications": plain_ops.multiplications,
                "exponentiations": plain_ops.exponentiations,
                "equivalent_multiplications": plain_ops.equivalent_multiplications,
            },
            "multiexp": {
                "multiplications": fast_ops.multiplications,
                "exponentiations": fast_ops.exponentiations,
                "equivalent_multiplications": fast_ops.equivalent_multiplications,
            },
        },
    }
    write_result("BENCH_parallel", json.dumps(payload, indent=2), suffix="json")

    # Headline acceptance ratios.
    assert speedup_serial >= 1.3, payload
    assert speedup_parallel >= 1.8, payload
    # The multiexp circuit must be dramatically cheaper in the paper's unit.
    assert (
        fast_ops.equivalent_multiplications
        < plain_ops.equivalent_multiplications / 3
    ), payload
